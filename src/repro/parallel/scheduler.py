"""Adaptive mid-join scheduling: a pull-based work-stealing shard queue.

The paper's scheduling currency is a *sampled per-cell cost model*
(:func:`repro.core.batching.estimate_cell_costs`): it decides where batch
and shard boundaries fall.  A cost model is only an estimate, though — and
under a static shard→worker assignment every estimation error (or a plainly
slow worker) turns directly into tail latency, which PR 8 could only paper
over with hedged duplicates.  This module replaces static assignment with
**dynamic, pull-based scheduling**, so runtime observation corrects what
the cost model mispredicts:

* The planner **oversplits** into :data:`OVERSPLIT_FACTOR` (~4×) shards per
  worker, dispatch-ordered largest first, so the pull queue always has
  slack to rebalance with.
* Workers **pull** the next shard when they finish one, instead of
  receiving a fixed partition up front.  Idle workers **steal** queued
  shards from the most-backlogged peer.
* The scheduler tracks an **EWMA of observed per-worker throughput** (cost
  units — roughly points·cells — per second) and **reassigns still-queued
  shards away from slow workers** before they become the tail.
* When the queue runs dry it **splits the largest in-flight shard at a
  B-order boundary** and races the halves on idle workers rather than
  letting them idle; **hedging** (a full duplicate) remains the last
  resort, used only for unsplittable work, so it fires strictly less often
  than under the static scheme.

Everything here is a *pure, deterministic state machine*: decisions are a
function of the event history (dispatch/start/complete/fail), all ties
break on (cost, shard key), and the clock is passed in by the caller — the
unit tests drive the scheduler with a fake clock and synthetic events, no
sockets or processes involved.  The :class:`~repro.distributed.backend.
DistributedBackend` drives the full event loop; the
:class:`~repro.parallel.mp.MultiprocessBackend` reuses the planning and
reporting halves (its ``multiprocessing.Pool`` task queue *is* the pull
mechanism) via :func:`pool_schedule_report`.

Results stay **bit-identical** to static assignment no matter the
completion order: every fragment is keyed by its hierarchical shard key,
and :class:`OrderedShardMerger` emits accepted fragments into the caller's
sink strictly in B-order shard order — a split shard's halves emit, in
order, exactly where the unsplit shard would have.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.batching import split_by_cost

#: Shards planned per worker.  ~4× oversubscription keeps the pull queue
#: deep enough that a slow worker's backlog can be stolen/rebalanced away,
#: while each shard stays large enough to amortize dispatch overhead.  (The
#: pre-scheduler backends used 2×, which left the tail one mispredicted
#: shard deep.)
OVERSPLIT_FACTOR = 4

#: Scheduling modes: ``adaptive`` is the full work-stealing scheme above;
#: ``static`` pins each worker to its cost-balanced initial queue (hedging
#: still allowed) — the baseline the ``schedule`` benchmark measures against.
SCHEDULING_MODES = ("adaptive", "static")

#: Kinds of task (shard) payloads the scheduler can split and re-order.
TASK_KINDS = ("selfjoin", "probe", "stream")


class ScheduleExhausted(RuntimeError):
    """A shard ran out of dispatch attempts (every retry failed)."""


# --------------------------------------------------------------------------
# tasks
# --------------------------------------------------------------------------
@dataclass
class ShardTask:
    """One schedulable unit of join work: a contiguous B-order shard.

    ``key`` is hierarchical: planner shards get ``(i,)``; a mid-join resplit
    of shard ``i`` produces children ``(i, 0)`` and ``(i, 1)`` covering its
    two contiguous halves.  The family of key ``(i, ...)`` is *covered* when
    either the original or both halves complete, and
    :class:`OrderedShardMerger` emits whichever covering set won, in key
    order — so the merged pair stream is identical either way.

    ``cells`` holds the shard's cell ids (self-joins) or global query-row
    ids (probes); ``span`` holds the ``[lo, hi)`` store-directory range of a
    disk-streamed shard.  ``item_costs``, aligned with ``cells`` (or the
    span), locates the cost-weighted midpoint for :meth:`split`.
    """

    key: Tuple[int, ...]
    cost: float
    kind: str = "selfjoin"
    cells: Optional[np.ndarray] = None
    span: Optional[Tuple[int, int]] = None
    item_costs: Optional[np.ndarray] = None
    depth: int = 0

    def __post_init__(self) -> None:
        if self.kind not in TASK_KINDS:
            raise ValueError(f"kind must be one of {TASK_KINDS}")

    @property
    def root(self) -> int:
        """The planner-level shard id this task descends from."""
        return int(self.key[0])

    @property
    def n_items(self) -> int:
        """Cells (or rows / directory slots) covered by this task."""
        if self.span is not None:
            return int(self.span[1] - self.span[0])
        return int(self.cells.shape[0]) if self.cells is not None else 0

    def splittable(self) -> bool:
        """Whether a B-order boundary exists to split this task at."""
        return self.n_items >= 2

    def split(self) -> Tuple["ShardTask", "ShardTask"]:
        """Split into two contiguous halves at the cost-weighted midpoint.

        The boundary is a *B-order* boundary: both halves stay contiguous
        slices of the parent's cell (or row / directory) sequence, so
        emitting child 0 then child 1 reproduces the parent's pair stream
        exactly.
        """
        if not self.splittable():
            raise ValueError(f"task {self.key} is not splittable")
        n = self.n_items
        if self.item_costs is not None and float(self.item_costs.sum()) > 0:
            cum = np.cumsum(np.asarray(self.item_costs, dtype=np.float64))
            mid = int(np.searchsorted(cum, float(cum[-1]) / 2.0, side="right"))
            mid = min(max(mid, 1), n - 1)
        else:
            mid = n // 2
        costs = self.item_costs

        def _child(idx: int, lo: int, hi: int) -> "ShardTask":
            child_costs = costs[lo:hi] if costs is not None else None
            if child_costs is not None and float(child_costs.sum()) > 0:
                child_cost = float(child_costs.sum())
            else:
                child_cost = self.cost * (hi - lo) / n
            return ShardTask(
                key=self.key + (idx,), cost=child_cost, kind=self.kind,
                cells=self.cells[lo:hi] if self.cells is not None else None,
                span=((self.span[0] + lo, self.span[0] + hi)
                      if self.span is not None else None),
                item_costs=child_costs, depth=self.depth + 1)

        return _child(0, 0, mid), _child(1, mid, n)


def tasks_from_arrays(groups: Sequence[np.ndarray],
                      group_costs: Sequence[np.ndarray],
                      kind: str = "selfjoin") -> List[ShardTask]:
    """Wrap planner output (cell/row groups + per-item costs) as tasks."""
    tasks = []
    for i, (cells, costs) in enumerate(zip(groups, group_costs)):
        if cells.shape[0] == 0:
            continue
        tasks.append(ShardTask(key=(i,), cost=float(costs.sum()), kind=kind,
                               cells=cells, item_costs=costs))
    return tasks


def dispatch_order(tasks: Sequence[ShardTask]) -> List[ShardTask]:
    """Largest-cost-first dispatch order (ties break on key: deterministic).

    Dispatching expensive shards first means the tail of the join is made of
    *small* shards, which both shortens the straggler window and leaves the
    resplit/hedge machinery less to duplicate.
    """
    return sorted(tasks, key=lambda t: (-t.cost, t.key))


# --------------------------------------------------------------------------
# reporting
# --------------------------------------------------------------------------
@dataclass
class ScheduleReport:
    """Observability record of one scheduled join (tentpole satellite).

    ``counts()`` is what backends fold into
    :attr:`repro.core.kernels.KernelStats.schedule_counts`; the full report
    (per-worker throughput, achieved-vs-predicted cost ratio) surfaces in
    backend stats and the service stats endpoint.
    """

    mode: str = "adaptive"
    n_workers: int = 0
    n_shards: int = 0
    steals: int = 0
    resplits: int = 0
    rebalances: int = 0
    hedges: int = 0
    redispatches: int = 0
    #: Stale copies dropped *without* executing (skipped at pull time, or a
    #: failed/cancelled copy of an already-covered shard — the hedge
    #: accounting fix: those are not wasted work and are not re-dispatched).
    duplicates_dropped: int = 0
    hedge_wasted_shards: int = 0
    hedge_wasted_pairs: int = 0
    resplit_wasted_shards: int = 0
    resplit_wasted_pairs: int = 0
    #: Cost-model total for the plan vs the work the accepted shards
    #: actually reported (distance calculations): the achieved-vs-predicted
    #: cost ratio says how well the sampled estimator steered the plan.
    predicted_cost: float = 0.0
    achieved_cost: float = 0.0
    #: EWMA throughput per worker (cost units/s) at the end of the join.
    worker_throughput: Dict[str, float] = field(default_factory=dict)
    #: Accepted shard completions per worker.
    worker_shards: Dict[str, int] = field(default_factory=dict)

    @property
    def cost_ratio(self) -> float:
        """achieved / predicted cost (0 when nothing was predicted)."""
        if self.predicted_cost <= 0:
            return 0.0
        return self.achieved_cost / self.predicted_cost

    def counts(self) -> Dict[str, int]:
        """The integer counters, ready for ``KernelStats.schedule_counts``."""
        out = {"shards": self.n_shards, "steals": self.steals,
               "resplits": self.resplits, "rebalances": self.rebalances,
               "hedges": self.hedges, "redispatches": self.redispatches,
               "duplicates_dropped": self.duplicates_dropped}
        if self.predicted_cost > 0 and self.achieved_cost > 0:
            out["cost_ratio_pct"] = int(round(self.cost_ratio * 100))
        return out

    def snapshot(self) -> dict:
        """JSON-friendly view for stats endpoints."""
        return {**self.counts(),
                "mode": self.mode,
                "n_workers": self.n_workers,
                "hedge_wasted_shards": self.hedge_wasted_shards,
                "hedge_wasted_pairs": self.hedge_wasted_pairs,
                "resplit_wasted_shards": self.resplit_wasted_shards,
                "resplit_wasted_pairs": self.resplit_wasted_pairs,
                "predicted_cost": self.predicted_cost,
                "achieved_cost": self.achieved_cost,
                "cost_ratio": self.cost_ratio,
                "worker_throughput": dict(self.worker_throughput),
                "worker_shards": dict(self.worker_shards)}


# --------------------------------------------------------------------------
# scheduler state
# --------------------------------------------------------------------------
@dataclass
class _Copy:
    """One dispatched copy of a task (a task may have several: hedges,
    resplit halves, re-dispatches after failures)."""

    task: ShardTask
    worker: str
    kind: str            # assigned | steal | resplit | hedge | redispatch
    dispatched: float
    started: Optional[float] = None

    def age(self, now: float) -> float:
        return now - (self.started if self.started is not None
                      else self.dispatched)


@dataclass
class _Family:
    """Coverage state of one planner-level shard (original + any halves)."""

    original: ShardTask
    children: Optional[Tuple[ShardTask, ShardTask]] = None
    done: Dict[Tuple[int, ...], int] = field(default_factory=dict)  # → pairs
    covered: bool = False
    chosen: Optional[List[Tuple[int, ...]]] = None
    attempts: int = 0

    def task_for(self, key: Tuple[int, ...]) -> ShardTask:
        if key == self.original.key:
            return self.original
        assert self.children is not None
        return self.children[key[-1]]

    def try_cover(self) -> bool:
        """Resolve coverage; returns True when it flips to covered."""
        if self.covered:
            return False
        if self.original.key in self.done:
            self.chosen = [self.original.key]
            self.covered = True
        elif self.children is not None \
                and all(c.key in self.done for c in self.children):
            self.chosen = [c.key for c in self.children]
            self.covered = True
        return self.covered


@dataclass
class _Worker:
    """Parent-side view of one worker (endpoint / pool slot)."""

    name: str
    alive: bool = True
    queue: List[ShardTask] = field(default_factory=list)  # sorted desc cost
    outstanding: Dict[Tuple[int, ...], _Copy] = field(default_factory=dict)
    ewma: Optional[float] = None          # cost units per second
    accepted: int = 0

    def queued_cost(self) -> float:
        return float(sum(t.cost for t in self.queue))

    def push(self, task: ShardTask) -> None:
        self.queue.append(task)
        self.queue.sort(key=lambda t: (-t.cost, t.key))

    def rate(self, fallback: float) -> float:
        return self.ewma if self.ewma is not None else fallback

    def backlog_eta(self, fallback: float) -> float:
        """Seconds of queued work at the observed rate."""
        rate = max(self.rate(fallback), 1e-12)
        return self.queued_cost() / rate


@dataclass
class Completion:
    """Outcome of :meth:`WorkStealingScheduler.on_complete`."""

    accepted: bool
    #: Set when this completion covered its shard family: the ordered list
    #: of copy keys whose fragments the merger should emit for that root.
    newly_covered: Optional[Tuple[int, List[Tuple[int, ...]]]] = None


class WorkStealingScheduler:
    """Deterministic pull-based work-stealing over oversplit shard tasks.

    Drive it with events: :meth:`next_task` when a worker has window
    capacity, :meth:`on_start` / :meth:`on_complete` / :meth:`on_failure` /
    :meth:`on_skipped` as they happen, :meth:`on_worker_dead` when a worker
    is lost, :meth:`maybe_rebalance` once per poll tick.  All timestamps
    come from the caller, so tests can replay exact histories.

    Parameters
    ----------
    tasks:
        Planner-level shards (keys ``(i,)``), any order; initial assignment
        partitions them contiguously by cost (``split_by_cost``) — exactly
        the static plan, which is also what ``mode="static"`` executes.
    workers:
        Worker names in a fixed order (endpoint strings, pool slots).
    mode:
        ``"adaptive"`` (steal + resplit + rebalance + hedge-last-resort) or
        ``"static"`` (own queue + hedging only).
    hedge_after:
        Seconds a lone in-flight copy may run before an idle worker may
        duplicate it; ``0`` disables hedging.
    ewma_alpha:
        Weight of the newest throughput observation.
    rebalance_ratio:
        A worker whose queued-work ETA exceeds the fastest worker's by this
        factor gets its largest queued shard moved there.
    max_attempts:
        Dispatch bound per shard family (default ``len(workers) + 2``).
    """

    def __init__(self, tasks: Sequence[ShardTask], workers: Sequence[str], *,
                 mode: str = "adaptive", hedge_after: float = 0.25,
                 ewma_alpha: float = 0.5, rebalance_ratio: float = 2.0,
                 max_attempts: Optional[int] = None) -> None:
        if mode not in SCHEDULING_MODES:
            raise ValueError(f"mode must be one of {SCHEDULING_MODES}")
        if not workers:
            raise ValueError("at least one worker is required")
        self.mode = mode
        self.hedge_after = float(hedge_after)
        self.ewma_alpha = float(ewma_alpha)
        self.rebalance_ratio = float(rebalance_ratio)
        self.max_attempts = (int(max_attempts) if max_attempts is not None
                             else len(workers) + 2)
        self._workers: Dict[str, _Worker] = {
            name: _Worker(name=name) for name in workers}
        tasks = sorted(tasks, key=lambda t: t.key)
        self.roots: List[int] = [t.root for t in tasks]
        self._families: Dict[int, _Family] = {
            t.root: _Family(original=t) for t in tasks}
        self.report = ScheduleReport(mode=mode, n_workers=len(workers),
                                     n_shards=len(tasks),
                                     predicted_cost=float(
                                         sum(t.cost for t in tasks)))
        # Initial assignment = the static plan: contiguous cost-balanced
        # partition of the shard sequence, each queue served largest-first.
        if tasks:
            costs = np.array([t.cost for t in tasks], dtype=np.float64)
            names = list(workers)
            for w, part in enumerate(split_by_cost(costs, len(names))):
                worker = self._workers[names[min(w, len(names) - 1)]]
                for idx in part:
                    worker.push(tasks[int(idx)])
        self._covered_roots: set = set()

    # ----------------------------------------------------------- inspection
    def finished(self) -> bool:
        """All shard families covered."""
        return len(self._covered_roots) == len(self._families)

    def covered_roots(self) -> set:
        """Roots already covered (snapshot; safe to copy across threads)."""
        return set(self._covered_roots)

    def is_stale(self, key: Tuple[int, ...]) -> bool:
        """Whether executing this copy can no longer contribute."""
        return int(key[0]) in self._covered_roots

    def outstanding_count(self, worker: str) -> int:
        return len(self._workers[worker].outstanding)

    def queued_count(self, worker: str) -> int:
        return len(self._workers[worker].queue)

    def alive_workers(self) -> List[str]:
        return [w.name for w in self._workers.values() if w.alive]

    def _mean_rate(self) -> float:
        rates = [w.ewma for w in self._workers.values() if w.ewma is not None]
        return float(np.mean(rates)) if rates else 1.0

    # ------------------------------------------------------------- dispatch
    def next_task(self, worker: str, now: float) -> Optional[ShardTask]:
        """Pull the next shard for ``worker`` (None: nothing useful to do).

        The adaptive waterfall — own queue, steal, resplit, hedge — makes
        hedging structurally the *last* resort: it is only reachable when no
        queued shard exists anywhere and no in-flight shard is splittable.
        """
        me = self._workers[worker]
        if not me.alive:
            return None
        task = self._pop_queue(me)
        if task is not None:
            return self._dispatch(me, task, "assigned", now)
        if self.mode == "adaptive":
            task = self._steal(me)
            if task is not None:
                return self._dispatch(me, task, "steal", now)
            task = self._resplit(me, now)
            if task is not None:
                return self._dispatch(me, task, "resplit", now)
        task = self._hedge(me, now)
        if task is not None:
            return self._dispatch(me, task, "hedge", now)
        return None

    def _dispatch(self, worker: _Worker, task: ShardTask, kind: str,
                  now: float) -> ShardTask:
        family = self._families[task.root]
        family.attempts += 1
        worker.outstanding[task.key] = _Copy(task=task, worker=worker.name,
                                             kind=kind, dispatched=now)
        return task

    def _pop_queue(self, worker: _Worker) -> Optional[ShardTask]:
        while worker.queue:
            task = worker.queue.pop(0)
            if self.is_stale(task.key):
                self.report.duplicates_dropped += 1
                continue
            if task.key in worker.outstanding:
                continue  # never two copies of one key on one worker
            return task
        return None

    def _steal(self, thief: _Worker) -> Optional[ShardTask]:
        victims = [w for w in self._workers.values()
                   if w.alive and w is not thief and w.queue]
        if not victims:
            return None
        # Steal from the worker with the longest *time* backlog (cost over
        # observed rate), not just the most cost: a slow worker's queue is
        # the tail risk.  Ties break on worker order.
        fallback = self._mean_rate()
        victim = max(victims, key=lambda w: w.backlog_eta(fallback))
        task = self._pop_queue(victim)
        if task is None:
            return None
        self.report.steals += 1
        return task

    def _inflight_copies(self) -> List[_Copy]:
        return [copy for w in self._workers.values() if w.alive
                for copy in w.outstanding.values()
                if not self.is_stale(copy.task.key)]

    def _resplit(self, me: _Worker, now: float) -> Optional[ShardTask]:
        """Split the largest in-flight-remaining original shard in two.

        The holder keeps computing the whole shard; the halves race it on
        idle workers.  Whichever covering set completes first wins, and the
        merger emits identical pairs either way.  One split per family
        bounds the duplicated work.
        """
        fallback = self._mean_rate()
        candidates = []
        for copy in self._inflight_copies():
            family = self._families[copy.task.root]
            if family.children is not None or not copy.task.splittable() \
                    or len(copy.task.key) != 1 \
                    or family.attempts >= self.max_attempts:
                continue
            holder_rate = max(self._workers[copy.worker].rate(fallback), 1e-12)
            candidates.append((copy.task.cost / holder_rate, copy))
        if not candidates:
            return None
        # Largest expected remaining time first; ties on key.
        candidates.sort(key=lambda c: (-c[0], c[1].task.key))
        target = candidates[0][1]
        family = self._families[target.task.root]
        first, second = target.task.split()
        family.children = (first, second)
        self.report.resplits += 1
        # The requester takes the first half now; the second half goes on
        # its queue where the next idle worker (or itself) picks it up.
        me.push(second)
        return first

    def _hedge(self, me: _Worker, now: float) -> Optional[ShardTask]:
        if self.hedge_after <= 0:
            return None
        candidates = []
        for copy in self._inflight_copies():
            family = self._families[copy.task.root]
            active = self._active_copies(copy.task.key)
            if len(active) != 1 or copy.age(now) < self.hedge_after \
                    or family.attempts >= self.max_attempts \
                    or copy.task.key in me.outstanding \
                    or copy.worker == me.name:
                continue
            candidates.append(copy)
        if not candidates:
            return None
        candidates.sort(key=lambda c: (-c.age(now), c.task.key))
        self.report.hedges += 1
        return candidates[0].task

    def _active_copies(self, key: Tuple[int, ...]) -> List[_Copy]:
        return [w.outstanding[key] for w in self._workers.values()
                if key in w.outstanding]

    # --------------------------------------------------------------- events
    def on_start(self, worker: str, key: Tuple[int, ...], now: float) -> None:
        copy = self._workers[worker].outstanding.get(tuple(key))
        if copy is not None:
            copy.started = now

    def on_skipped(self, worker: str, key: Tuple[int, ...]) -> None:
        """A stale copy was dropped before execution (no work wasted)."""
        self._workers[worker].outstanding.pop(tuple(key), None)
        self.report.duplicates_dropped += 1

    def on_complete(self, worker: str, key: Tuple[int, ...], now: float,
                    pairs: int = 0) -> Completion:
        """A copy finished OK.  Returns whether its fragments are accepted
        (first completion of its key on a still-uncovered family) and, when
        it covered the family, which keys the merger should emit."""
        key = tuple(key)
        me = self._workers[worker]
        copy = me.outstanding.pop(key, None)
        family = self._families[int(key[0])]
        if copy is not None:
            # Throughput observation: cost units per second of busy time.
            duration = max(now - (copy.started if copy.started is not None
                                  else copy.dispatched), 1e-9)
            rate = copy.task.cost / duration
            me.ewma = (rate if me.ewma is None
                       else self.ewma_alpha * rate
                       + (1.0 - self.ewma_alpha) * me.ewma)
        if family.covered or key in family.done:
            # The losing side of a duplicate race: real compute thrown away.
            self._count_waste(family, copy, pairs)
            return Completion(accepted=False)
        family.done[key] = int(pairs)
        me.accepted += 1
        self.report.worker_shards[worker] = \
            self.report.worker_shards.get(worker, 0) + 1
        if family.try_cover():
            root = int(key[0])
            self._covered_roots.add(root)
            return Completion(accepted=True,
                              newly_covered=(root, list(family.chosen)))
        return Completion(accepted=True)

    def _count_waste(self, family: _Family, copy: Optional[_Copy],
                     pairs: int) -> None:
        """Attribute an executed-but-rejected copy to the racing mechanism.

        A resplit half (or an original beaten by its halves) is resplit
        waste; everything else lost a race that only existed because of a
        hedge, so it is hedge waste.  Copies that never executed (skipped
        stale, cancelled before completing) are *not* counted here — that
        is the hedge-accounting fix.
        """
        kind = copy.kind if copy is not None else "hedge"
        resplit_race = kind == "resplit" or (
            copy is not None and len(copy.task.key) > 1) or (
            kind in ("assigned", "steal", "redispatch")
            and family.children is not None)
        if resplit_race:
            self.report.resplit_wasted_shards += 1
            self.report.resplit_wasted_pairs += int(pairs)
        else:
            self.report.hedge_wasted_shards += 1
            self.report.hedge_wasted_pairs += int(pairs)

    def on_failure(self, worker: str, key: Tuple[int, ...], now: float,
                   reason: str = "") -> None:
        """A copy was cancelled / timed out / lost with its worker.

        The hedge-accounting fix lives here: a failed copy of an
        already-covered family is *dropped* — it did no countable work, it
        is not wasted compute, and it must never be re-dispatched (the
        pre-scheduler dispatcher re-queued such copies, then double-counted
        them as hedge waste when they completed).
        """
        key = tuple(key)
        me = self._workers[worker]
        me.outstanding.pop(key, None)
        family = self._families[int(key[0])]
        if family.covered or key in family.done:
            self.report.duplicates_dropped += 1
            return
        if self._active_copies(key):
            # Another copy of the same key is still running; no requeue.
            return
        if family.attempts >= self.max_attempts:
            raise ScheduleExhausted(
                f"shard {key} failed after {family.attempts} dispatch "
                f"attempts; last reason: {reason}")
        self.report.redispatches += 1
        self._requeue(family.task_for(key))

    def _requeue(self, task: ShardTask) -> None:
        alive = [w for w in self._workers.values() if w.alive]
        if not alive:
            raise ScheduleExhausted(
                f"shard {task.key} cannot be re-dispatched: no workers left")
        fallback = self._mean_rate()
        target = min(alive, key=lambda w: (w.backlog_eta(fallback),
                                           len(w.outstanding)))
        target.push(task)

    def on_worker_dead(self, worker: str, now: float) -> None:
        """Lose a worker: requeue its shards onto the survivors."""
        me = self._workers[worker]
        if not me.alive:
            return
        me.alive = False
        queued, me.queue = me.queue, []
        outstanding, me.outstanding = list(me.outstanding.values()), {}
        for task in queued:
            if not self.is_stale(task.key):
                self._requeue(task)
        for copy in outstanding:
            me.outstanding[copy.task.key] = copy  # restore for on_failure
            self.on_failure(worker, copy.task.key, now, reason="worker died")

    def maybe_rebalance(self, now: float) -> bool:
        """Move one queued shard off the most-backlogged slow worker.

        Fires when the slowest worker's queued-work ETA exceeds the fastest
        worker's by ``rebalance_ratio`` — the observed-throughput correction
        of the cost model's static assignment.  Returns whether a move
        happened (at most one per call, so the poll loop stays cheap).
        """
        if self.mode != "adaptive":
            return False
        alive = [w for w in self._workers.values() if w.alive]
        if len(alive) < 2:
            return False
        fallback = self._mean_rate()
        loaded = [w for w in alive if w.queue]
        if not loaded:
            return False
        slow = max(loaded, key=lambda w: w.backlog_eta(fallback))
        fast = min(alive, key=lambda w: w.backlog_eta(fallback))
        if fast is slow:
            return False
        slow_eta = slow.backlog_eta(fallback)
        fast_eta = fast.backlog_eta(fallback)
        if slow_eta <= self.rebalance_ratio * max(fast_eta, 1e-12):
            return False
        task = self._pop_queue(slow)
        if task is None:
            return False
        # Only worth it if the move shortens the critical path.
        fast_rate = max(fast.rate(fallback), 1e-12)
        if fast_eta + task.cost / fast_rate >= slow_eta:
            slow.push(task)
            return False
        fast.push(task)
        self.report.rebalances += 1
        return True

    # ---------------------------------------------------------------- report
    def finalize_report(self, achieved_cost: float = 0.0) -> ScheduleReport:
        """Stamp end-of-join observability (throughput map, cost ratio)."""
        self.report.worker_throughput = {
            w.name: float(w.ewma) for w in self._workers.values()
            if w.ewma is not None}
        self.report.achieved_cost = float(achieved_cost)
        return self.report


# --------------------------------------------------------------------------
# deterministic merge
# --------------------------------------------------------------------------
class OrderedShardMerger:
    """Emit accepted shard fragments into a sink in B-order shard order.

    Completions arrive in any order; fragments are stashed per copy key and
    flushed root-by-root as the frontier of covered roots advances — so the
    merged pair stream is bit-identical to a serial static run no matter
    which workers finished first, and only out-of-order shards are ever
    buffered (in-order completions flush immediately).

    ``key_maps`` (per copy key, optional) re-base a probe shard's
    slice-local result rows onto global query rows at emit time.
    """

    def __init__(self, sink, roots: Sequence[int]) -> None:
        self.sink = sink
        self.roots = list(roots)
        self._next = 0
        self._chunks: Dict[Tuple[int, ...], List[Tuple[np.ndarray, np.ndarray]]] = {}
        self._key_maps: Dict[Tuple[int, ...], Optional[np.ndarray]] = {}
        self._chosen: Dict[int, List[Tuple[int, ...]]] = {}

    def stash(self, key: Tuple[int, ...],
              chunks: List[Tuple[np.ndarray, np.ndarray]],
              key_map: Optional[np.ndarray] = None) -> None:
        """Hold an accepted copy's fragments until its turn to emit."""
        key = tuple(key)
        self._chunks[key] = list(chunks)
        self._key_maps[key] = key_map

    def complete(self, root: int, chosen: List[Tuple[int, ...]]) -> None:
        """Mark a root covered by ``chosen`` copies; flush the frontier."""
        self._chosen[int(root)] = [tuple(k) for k in chosen]
        self._flush()

    def _flush(self) -> None:
        while self._next < len(self.roots):
            root = self.roots[self._next]
            chosen = self._chosen.get(root)
            if chosen is None:
                return
            for key in chosen:
                key_map = self._key_maps.pop(key, None)
                for keys, values in self._chunks.pop(key, []):
                    if key_map is not None:
                        keys = key_map[keys]
                    self.sink.emit(keys, values)
            self._next += 1

    def pending(self) -> int:
        """Roots not yet flushed (0 once the join fully merged)."""
        return len(self.roots) - self._next


# --------------------------------------------------------------------------
# pool-mode reporting (multiprocess backend)
# --------------------------------------------------------------------------
def pool_schedule_report(tasks: Sequence[ShardTask],
                         executions: Sequence[Tuple[Tuple[int, ...], str,
                                                    float]],
                         n_workers: int,
                         achieved_cost: float = 0.0) -> ScheduleReport:
    """Post-hoc schedule report for a ``multiprocessing.Pool`` run.

    The pool's internal task queue is already the pull mechanism (workers
    fetch the next shard as they free up, ``chunksize=1``), so the parent
    only observes *which* process ran each shard and for how long.
    ``executions`` holds one ``(key, worker, duration_s)`` triple per shard.

    Steals are inferred against the fair share: with pull scheduling a fast
    worker absorbs a slow peer's shards, so any shard a worker executes
    beyond ``ceil(n_shards / n_workers)`` was stolen from the static plan.
    """
    report = ScheduleReport(mode="adaptive", n_workers=int(n_workers),
                            n_shards=len(tasks),
                            predicted_cost=float(sum(t.cost for t in tasks)),
                            achieved_cost=float(achieved_cost))
    costs = {t.key: t.cost for t in tasks}
    by_worker: Dict[str, List[Tuple[float, float]]] = {}
    for key, worker, duration in executions:
        by_worker.setdefault(worker, []).append(
            (costs.get(tuple(key), 0.0), float(duration)))
        report.worker_shards[worker] = report.worker_shards.get(worker, 0) + 1
    for worker, runs in by_worker.items():
        total_cost = sum(c for c, _ in runs)
        total_time = max(sum(d for _, d in runs), 1e-9)
        report.worker_throughput[worker] = total_cost / total_time
    if executions and n_workers > 0:
        fair = -(-len(tasks) // int(n_workers))  # ceil
        report.steals = sum(max(0, count - fair)
                            for count in report.worker_shards.values())
    return report
