"""Timing helpers used by the experiment harness.

The paper reports response times averaged over three trials; the
:class:`Timer` context manager and the :func:`timed` helper provide the
measurement primitive and keep the averaging logic in
:mod:`repro.analysis.stats`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Tuple


@dataclass
class Timer:
    """Context-manager wall-clock timer.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = time.perf_counter() - self._start

    def start(self) -> None:
        """Start (or restart) the timer."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop the timer and return the elapsed wall-clock seconds."""
        self.elapsed = time.perf_counter() - self._start
        return self.elapsed


def timed(func: Callable[..., Any], *args: Any, **kwargs: Any) -> Tuple[Any, float]:
    """Call ``func(*args, **kwargs)`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = func(*args, **kwargs)
    return result, time.perf_counter() - start
