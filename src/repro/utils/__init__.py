"""Shared utilities: timing, validation and lightweight logging."""

from repro.utils.timing import Timer, timed
from repro.utils.validation import (
    check_eps,
    check_points,
    ensure_2d_float64,
    require,
)

__all__ = [
    "Timer",
    "timed",
    "check_eps",
    "check_points",
    "ensure_2d_float64",
    "require",
]
