"""Minimal logging facade.

The library never configures the root logger; it only emits records under
the ``repro`` namespace so applications control verbosity.  The experiment
harness uses :func:`get_logger` for progress messages when ``verbose=True``.
"""

from __future__ import annotations

import logging


def get_logger(name: str = "repro") -> logging.Logger:
    """Return a library logger, namespaced under ``repro``."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def enable_verbose(level: int = logging.INFO) -> None:
    """Attach a stream handler to the ``repro`` logger (idempotent).

    Intended for command-line example scripts; libraries embedding ``repro``
    should configure logging themselves.
    """
    logger = logging.getLogger("repro")
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("[%(name)s] %(message)s"))
        logger.addHandler(handler)
    logger.setLevel(level)
