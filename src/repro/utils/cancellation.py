"""Cooperative cancellation and deadlines for long-running engine work.

The query service (:mod:`repro.service`) attaches per-request deadlines;
merely *responding* with a timeout is not enough — the shard loops must
actually stop burning CPU on a request nobody is waiting for.  Engine
operators are plain synchronous loops, so cancellation is cooperative: the
service wraps each execution in a :func:`cancel_scope` carrying a
:class:`CancellationToken`, and the batch/shard loops call
:func:`check_cancelled` between units of work.  A tripped token raises
:class:`OperationCancelled`, which unwinds the operator mid-plan.

The scope travels in a thread-local, not in function signatures: the engine
executes a request on one worker thread end to end (executor → backend →
shard loop), so nothing in the operator seam has to grow a ``cancel=``
parameter, and code that never uses cancellation pays one thread-local read
per checkpoint.  Checks sit between batches, shards and radius-doubling
rounds — granular enough that a cancelled multi-shard join stops within one
shard's worth of work.  (Work already shipped to a ``multiprocess`` pool
worker finishes its current shard; the parent stops merging and dispatching
afterwards.)
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional


class OperationCancelled(RuntimeError):
    """Raised at a cancellation checkpoint once the scope's token tripped.

    ``reason`` distinguishes an explicit cancel (client disconnected, server
    shutting down) from an expired deadline, so callers can map the unwind
    to the right structured response.
    """

    def __init__(self, reason: str = "cancelled") -> None:
        super().__init__(reason)
        self.reason = reason

    @property
    def is_deadline(self) -> bool:
        """True when the cancellation came from an expired deadline."""
        return self.reason == "deadline"


class CancellationToken:
    """A cancel flag plus an optional monotonic-clock deadline.

    Safe to cancel from any thread; checked cooperatively by the thread
    running the work.  ``deadline`` is an absolute :func:`time.monotonic`
    timestamp (use :meth:`with_timeout` for a relative one).
    """

    __slots__ = ("deadline", "_cancelled", "_reason")

    def __init__(self, deadline: Optional[float] = None) -> None:
        self.deadline = deadline
        self._cancelled = False
        self._reason = "cancelled"

    @classmethod
    def with_timeout(cls, seconds: float) -> "CancellationToken":
        """A token expiring ``seconds`` from now (``<= 0`` is already expired)."""
        return cls(deadline=time.monotonic() + float(seconds))

    def cancel(self, reason: str = "cancelled") -> None:
        """Trip the token; the owning work stops at its next checkpoint."""
        self._reason = reason
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called (deadline expiry not included)."""
        return self._cancelled

    @property
    def expired(self) -> bool:
        """Whether the deadline (if any) has passed."""
        return self.deadline is not None and time.monotonic() >= self.deadline

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (``None`` without one; floored at 0)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - time.monotonic())

    def check(self) -> None:
        """Raise :class:`OperationCancelled` if tripped or past deadline."""
        if self._cancelled:
            raise OperationCancelled(self._reason)
        if self.expired:
            raise OperationCancelled("deadline")


_SCOPE = threading.local()


def current_token() -> Optional[CancellationToken]:
    """The token of the innermost active :func:`cancel_scope` (or ``None``)."""
    return getattr(_SCOPE, "token", None)


@contextmanager
def cancel_scope(token: Optional[CancellationToken]) -> Iterator[None]:
    """Make ``token`` the current thread's cancellation scope.

    Scopes nest; the innermost one wins.  Passing ``None`` is a no-op scope,
    which lets callers thread an optional token without branching.
    """
    previous = getattr(_SCOPE, "token", None)
    _SCOPE.token = token if token is not None else previous
    try:
        yield
    finally:
        _SCOPE.token = previous


def check_cancelled() -> None:
    """Cancellation checkpoint: no-op outside a scope, else token.check().

    This is the call sprinkled through the batch/shard loops; it must stay
    cheap on the common (no scope) path — one thread-local read.
    """
    token = getattr(_SCOPE, "token", None)
    if token is not None:
        token.check()
