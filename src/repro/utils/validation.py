"""Input validation helpers shared across the library.

All public entry points funnel through these checks so that error messages
are consistent and the numeric kernels can assume well-formed inputs
(C-contiguous 2-D ``float64`` arrays, strictly positive ε).
"""

from __future__ import annotations

from typing import Any

import numpy as np


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` when ``condition`` is false."""
    if not condition:
        raise ValueError(message)


def ensure_2d_float64(points: Any, name: str = "points") -> np.ndarray:
    """Coerce ``points`` to a C-contiguous 2-D ``float64`` array.

    Parameters
    ----------
    points:
        Array-like of shape ``(n_points, n_dims)``. A 1-D array is treated as
        a single-dimension dataset of shape ``(n_points, 1)``.
    name:
        Name used in error messages.

    Returns
    -------
    numpy.ndarray
        A C-contiguous ``float64`` view/copy of the input.
    """
    arr = np.asarray(points, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be a 2-D array, got ndim={arr.ndim}")
    if arr.shape[0] == 0:
        raise ValueError(f"{name} must contain at least one point")
    if arr.shape[1] == 0:
        raise ValueError(f"{name} must have at least one dimension")
    if not np.isfinite(arr).all():
        raise ValueError(f"{name} must be finite (no NaN/inf values)")
    return np.ascontiguousarray(arr)


def check_points(points: Any, max_dims: int | None = None) -> np.ndarray:
    """Validate a point set and optionally bound its dimensionality.

    The paper targets 2–6 dimensions; callers that implement paper-scoped
    behaviour pass ``max_dims`` to surface a clear error rather than silently
    degrading (the grid index itself works for any ``n``).
    """
    arr = ensure_2d_float64(points)
    if max_dims is not None and arr.shape[1] > max_dims:
        raise ValueError(
            f"points have {arr.shape[1]} dimensions; this operation supports "
            f"at most {max_dims} (the paper targets low dimensionality)"
        )
    return arr


def check_eps(eps: float) -> float:
    """Validate the ε search distance (must be a finite positive scalar)."""
    eps_f = float(eps)
    if not np.isfinite(eps_f) or eps_f <= 0.0:
        raise ValueError(f"eps must be a finite positive number, got {eps!r}")
    return eps_f
