"""repro — reproduction of *GPU Accelerated Self-Join for the Distance Similarity Metric*.

The package implements the paper's contribution (the GPU-SJ grid-index
self-join with the UNICOMP work-avoidance optimization and result-set
batching) together with every substrate it depends on:

* :mod:`repro.gpusim` — a SIMT-style device model that substitutes for the
  CUDA GPU used in the paper (global memory, warps, occupancy, cache model,
  streams).
* :mod:`repro.baselines` — the comparison algorithms: a from-scratch R-tree
  search-and-refine self-join (CPU-RTREE), an Epsilon-Grid-Order join
  (SUPEREGO), and brute-force joins.
* :mod:`repro.data` — synthetic and surrogate "real-world" dataset generators
  mirroring Table I of the paper.
* :mod:`repro.experiments` — the benchmark harness regenerating every table
  and figure of the evaluation section.
* :mod:`repro.apps` — applications built on the self-join (DBSCAN, kNN).
* :mod:`repro.engine` — the unified query engine: one declarative
  :class:`~repro.engine.query.Query` (self-join / bipartite join / range
  query / kNN candidates), one planner, pluggable execution backends, and
  the CSR-native result pipeline every workload above runs on.

Quickstart
----------
>>> import numpy as np
>>> from repro import selfjoin
>>> rng = np.random.default_rng(0)
>>> points = rng.uniform(0.0, 10.0, size=(1000, 2))
>>> result = selfjoin(points, eps=0.5)
>>> result.num_pairs > 0
True

The same join through the engine, straight to the CSR neighbor table:

>>> from repro import Query, run_query
>>> table = run_query(Query.self_join(points, eps=0.5)).neighbor_table
>>> int(table.num_pairs) == result.num_pairs
True
"""

from __future__ import annotations

from repro.core.selfjoin import GPUSelfJoin, SelfJoinConfig, selfjoin
from repro.core.gridindex import GridIndex
from repro.core.result import NeighborTable, PairFragments, ResultSet
from repro.core.batching import BatchPlan, BatchPlanner
from repro.core.join import range_query, similarity_join
from repro.core.selector import adaptive_selfjoin, select_algorithm
from repro.engine import Query, QueryPlanner, run_query

__all__ = [
    "GPUSelfJoin",
    "SelfJoinConfig",
    "selfjoin",
    "similarity_join",
    "range_query",
    "adaptive_selfjoin",
    "select_algorithm",
    "GridIndex",
    "NeighborTable",
    "PairFragments",
    "ResultSet",
    "BatchPlan",
    "BatchPlanner",
    "Query",
    "QueryPlanner",
    "run_query",
    "__version__",
]

__version__ = "1.1.0"
