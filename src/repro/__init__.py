"""repro — reproduction of *GPU Accelerated Self-Join for the Distance Similarity Metric*.

The package implements the paper's contribution (the GPU-SJ grid-index
self-join with the UNICOMP work-avoidance optimization and result-set
batching) together with every substrate it depends on:

* :mod:`repro.gpusim` — a SIMT-style device model that substitutes for the
  CUDA GPU used in the paper (global memory, warps, occupancy, cache model,
  streams).
* :mod:`repro.baselines` — the comparison algorithms: a from-scratch R-tree
  search-and-refine self-join (CPU-RTREE), an Epsilon-Grid-Order join
  (SUPEREGO), and brute-force joins.
* :mod:`repro.data` — synthetic and surrogate "real-world" dataset generators
  mirroring Table I of the paper.
* :mod:`repro.experiments` — the benchmark harness regenerating every table
  and figure of the evaluation section.
* :mod:`repro.apps` — applications built on the self-join (DBSCAN, kNN).

Quickstart
----------
>>> import numpy as np
>>> from repro import selfjoin
>>> rng = np.random.default_rng(0)
>>> points = rng.uniform(0.0, 10.0, size=(1000, 2))
>>> result = selfjoin(points, eps=0.5)
>>> result.num_pairs > 0
True
"""

from __future__ import annotations

from repro.core.selfjoin import GPUSelfJoin, SelfJoinConfig, selfjoin
from repro.core.gridindex import GridIndex
from repro.core.result import NeighborTable, ResultSet
from repro.core.batching import BatchPlan, BatchPlanner
from repro.core.join import range_query, similarity_join
from repro.core.selector import adaptive_selfjoin, select_algorithm

__all__ = [
    "GPUSelfJoin",
    "SelfJoinConfig",
    "selfjoin",
    "similarity_join",
    "range_query",
    "adaptive_selfjoin",
    "select_algorithm",
    "GridIndex",
    "NeighborTable",
    "ResultSet",
    "BatchPlan",
    "BatchPlanner",
    "__version__",
]

__version__ = "1.0.0"
