"""Figure 9: impact of UNICOMP — ratio of GPU response times without / with it.

Three panels group the datasets (real-world, synthetic 2M, synthetic 10M).
A ratio above 1 means UNICOMP helps; the paper finds ratios within 1.5× on
the real-world (2–3-D) datasets and ratios that can exceed 2× on the ≥ 3-D
synthetic datasets, which Table II attributes to improved cache utilization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.data.datasets import (
    DATASETS,
    REAL_WORLD_DATASETS,
    SYN_10M_DATASETS,
    SYN_2M_DATASETS,
)
from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentResult, run_response_time_experiment

WITHOUT = "GPU"
WITH = "GPU: unicomp"

#: Figure panels: label -> dataset group.
PANELS: Dict[str, Tuple[str, ...]] = {
    "a (real-world)": REAL_WORLD_DATASETS,
    "b (Syn 2M)": SYN_2M_DATASETS,
    "c (Syn 10M)": SYN_10M_DATASETS,
}


@dataclass
class UnicompRatioSummary:
    """Per-measurement UNICOMP ratios."""

    ratios: Dict[Tuple[str, float], float]

    def rows(self) -> List[Tuple[str, float, float]]:
        """(dataset, eps, ratio) rows sorted by dataset then eps."""
        return [(ds, eps, r) for (ds, eps), r in sorted(self.ratios.items())]

    def panel(self, datasets: Sequence[str]) -> Dict[Tuple[str, float], float]:
        """Subset of the ratios belonging to one figure panel."""
        keep = set(datasets)
        return {k: v for k, v in self.ratios.items() if k[0] in keep}

    def max_ratio(self) -> float:
        """Largest observed ratio (paper: > 2 on 5–6-D synthetic data)."""
        return max(self.ratios.values()) if self.ratios else 0.0

    def min_ratio(self) -> float:
        """Smallest observed ratio (paper: slight slowdowns possible, ~1)."""
        return min(self.ratios.values()) if self.ratios else 0.0


def ratios_from_result(result: ExperimentResult) -> UnicompRatioSummary:
    """Compute time(GPU without UNICOMP) / time(GPU with UNICOMP) per point."""
    without = result.time_map(WITHOUT)
    with_ = result.time_map(WITH)
    common = set(without) & set(with_)
    if not common:
        raise ValueError("result must contain both 'GPU' and 'GPU: unicomp' records")
    ratios = {key: without[key] / with_[key] for key in sorted(common)}
    return UnicompRatioSummary(ratios=ratios)


def run_fig9(n_points: Optional[int] = None,
             datasets: Optional[Sequence[str]] = None,
             trials: int = 1, seed: int = 0) -> UnicompRatioSummary:
    """Run both GPU-SJ variants and compute the UNICOMP ratio per measurement."""
    names = list(datasets) if datasets is not None else list(DATASETS)
    result = run_response_time_experiment(names, algorithms=(WITHOUT, WITH),
                                          n_points=n_points, trials=trials, seed=seed)
    return ratios_from_result(result)


def format_fig9(summary: UnicompRatioSummary) -> str:
    """Render the three panels of the figure as text tables."""
    blocks: List[str] = []
    for label, group in PANELS.items():
        panel = summary.panel(group)
        if not panel:
            continue
        rows = [(ds, eps, ratio) for (ds, eps), ratio in sorted(panel.items())]
        blocks.append(format_table(("dataset", "eps", "ratio_without_over_with"), rows,
                                   title=f"Figure 9{label}: UNICOMP response-time ratio"))
    blocks.append(f"max ratio: {summary.max_ratio():.2f}  min ratio: {summary.min_ratio():.2f}")
    return "\n\n".join(blocks)
