"""Table II: kernel metrics of GPU-SJ with and without UNICOMP.

The paper profiles four configurations (SW2DA and SDSS2DA at ε = 0.3,
Syn5D2M and Syn6D2M at ε = 8) and reports, for the kernel with and without
UNICOMP: the theoretical occupancy, the unified-cache bandwidth utilization,
and the ratios of response time, occupancy and cache utilization.  The
paper's reading: UNICOMP always lowers occupancy (more registers), but on the
5–6-D datasets it *increases* cache utilization, which is why the response
time improves by more than the 2× work reduction.

The reproduction gathers the same quantities from the instrumented device
model (:mod:`repro.core.simkernels`): theoretical occupancy comes from the
occupancy calculator with the fitted register model, cache utilization from
the set-associative unified-cache model, and the response-time ratio from the
measured wall-clock times of the production (vectorized) kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.gridindex import GridIndex
from repro.core.kernels import selfjoin_global_vectorized, selfjoin_unicomp_vectorized
from repro.core.simkernels import simulated_selfjoin
from repro.data.datasets import DATASETS
from repro.experiments.report import format_table
from repro.utils.timing import Timer

#: The four rows of Table II: dataset name and the paper's ε for that row.
TABLE2_CONFIGS: Tuple[Tuple[str, float], ...] = (
    ("SW2DA", 0.3),
    ("SDSS2DA", 0.3),
    ("Syn5D2M", 8.0),
    ("Syn6D2M", 8.0),
)

#: Paper values for the occupancy columns (used in EXPERIMENTS.md comparisons).
PAPER_OCCUPANCY: Dict[str, Tuple[float, float]] = {
    "SW2DA": (1.00, 0.75),
    "SDSS2DA": (1.00, 0.75),
    "Syn5D2M": (0.625, 0.50),
    "Syn6D2M": (0.625, 0.50),
}


@dataclass
class Table2Row:
    """One row of the reproduced Table II."""

    dataset: str
    eps: float
    response_time_ratio: float
    occupancy_global: float
    cache_util_global: float
    occupancy_unicomp: float
    cache_util_unicomp: float

    @property
    def occupancy_ratio(self) -> float:
        """Occupancy with UNICOMP divided by occupancy without."""
        if self.occupancy_global == 0:
            return 0.0
        return self.occupancy_unicomp / self.occupancy_global

    @property
    def cache_ratio(self) -> float:
        """Cache utilization with UNICOMP divided by without."""
        if self.cache_util_global == 0:
            return 0.0
        return self.cache_util_unicomp / self.cache_util_global


def run_table2(n_points: int = 1500,
               configs: Sequence[Tuple[str, float]] = TABLE2_CONFIGS,
               timing_repeats: int = 3, seed: int = 0) -> List[Table2Row]:
    """Reproduce Table II on scaled-down datasets.

    Parameters
    ----------
    n_points:
        Scaled dataset size for the instrumented runs (the per-thread device
        model is interpreted Python, so this stays small).
    configs:
        (dataset, paper ε) rows to evaluate.
    timing_repeats:
        Wall-clock repetitions of the vectorized kernels for the response-time
        ratio column (paper: 3 trials).
    """
    rows: List[Table2Row] = []
    for dataset, paper_eps in configs:
        spec = DATASETS[dataset]
        points = spec.generate(n_points=n_points, seed=seed)
        eps = float(paper_eps * spec.eps_scale_factor(n_points))
        index = GridIndex.build(points, eps)

        # Response-time ratio from the production kernels (mean of repeats).
        t_global = _time_kernel(index, eps, unicomp=False, repeats=timing_repeats)
        t_unicomp = _time_kernel(index, eps, unicomp=True, repeats=timing_repeats)
        ratio = t_global / t_unicomp if t_unicomp > 0 else 0.0

        # Occupancy and cache utilization from the instrumented device model.
        sim_global = simulated_selfjoin(index, eps, unicomp=False)
        sim_unicomp = simulated_selfjoin(index, eps, unicomp=True)

        rows.append(Table2Row(
            dataset=dataset,
            eps=eps,
            response_time_ratio=ratio,
            occupancy_global=sim_global.metrics.theoretical_occupancy,
            cache_util_global=sim_global.metrics.unified_cache_utilization_gbps(),
            occupancy_unicomp=sim_unicomp.metrics.theoretical_occupancy,
            cache_util_unicomp=sim_unicomp.metrics.unified_cache_utilization_gbps(),
        ))
    return rows


def _time_kernel(index: GridIndex, eps: float, unicomp: bool, repeats: int) -> float:
    """Mean wall-clock time of the vectorized kernel over ``repeats`` runs."""
    kernel = selfjoin_unicomp_vectorized if unicomp else selfjoin_global_vectorized
    times: List[float] = []
    for _ in range(max(1, repeats)):
        with Timer() as t:
            kernel(index, eps)
        times.append(t.elapsed)
    return sum(times) / len(times)


def format_table2(rows: Sequence[Table2Row]) -> str:
    """Render the reproduced Table II."""
    table_rows = [(r.dataset, r.eps, r.response_time_ratio,
                   r.occupancy_global, r.cache_util_global,
                   r.occupancy_unicomp, r.cache_util_unicomp,
                   r.occupancy_ratio, r.cache_ratio) for r in rows]
    return format_table(
        ("dataset", "eps", "ratio_resp_time", "occupancy", "cache_GBps",
         "occupancy_unicomp", "cache_GBps_unicomp", "ratio_occupancy", "ratio_cache"),
        table_rows,
        title="Table II: kernel metrics with and without UNICOMP (device model)")
