"""Benchmark harness: one module per table/figure of the paper's evaluation.

Every experiment module exposes a ``run_*`` function returning plain records
(dataset, ε, algorithm, response time, …) plus a ``format_*`` helper that
renders the same rows/series the paper reports.  The pytest-benchmark targets
under ``benchmarks/`` call these functions with scaled-down default sizes;
EXPERIMENTS.md records the scaled configuration used and compares the
measured shapes against the paper's headline numbers.
"""

from repro.experiments.runner import (
    ALGORITHMS,
    ExperimentResult,
    TimingRecord,
    run_algorithm,
    run_response_time_experiment,
)
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments

__all__ = [
    "ALGORITHMS",
    "ExperimentResult",
    "TimingRecord",
    "run_algorithm",
    "run_response_time_experiment",
    "EXPERIMENTS",
    "get_experiment",
    "list_experiments",
]
