"""Table I: dataset summary (name, |D|, dimensionality).

The reproduction renders the paper's table side by side with the scaled
sizes the benchmark harness actually uses and the ε scale factor derived
from the density rule (DESIGN.md §2 / §5).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.data.datasets import DATASETS
from repro.experiments.report import format_table


def table1_rows(n_points: Optional[int] = None
                ) -> List[Tuple[str, int, int, int, float, str]]:
    """Rows of the reproduced Table I.

    Columns: dataset, paper |D|, n, scaled |D|, ε scale factor, figure panel.
    """
    rows: List[Tuple[str, int, int, int, float, str]] = []
    for name, spec in DATASETS.items():
        scaled = int(n_points) if n_points is not None else spec.default_scaled_points
        rows.append((name, spec.paper_points, spec.n_dims, scaled,
                     round(spec.eps_scale_factor(scaled), 3), spec.figure))
    return rows


def run_table1(n_points: Optional[int] = None) -> List[Tuple[str, int, int, int, float, str]]:
    """Alias of :func:`table1_rows` so the experiment registry is uniform."""
    return table1_rows(n_points)


def format_table1(rows: List[Tuple[str, int, int, int, float, str]]) -> str:
    """Render the table."""
    return format_table(
        ("dataset", "paper_|D|", "n", "scaled_|D|", "eps_scale", "figure"),
        rows,
        title="Table I: datasets (paper sizes and reproduction scaling)")
