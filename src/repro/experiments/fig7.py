"""Figure 7: speedup of GPU-SJ + UNICOMP over CPU-RTREE.

The paper derives this figure from Figures 4–6: for every (dataset, ε)
measurement the ratio of the CPU-RTREE time to the GPU-SJ (UNICOMP) time is
plotted, with an average speedup of 26.9× across all datasets and the largest
gains (up to 125×) on the higher-dimensional synthetic datasets.

The reproduction can either re-use an :class:`ExperimentResult` that already
contains both algorithms (``speedups_from_result``) or run a dedicated
reduced sweep (``run_fig7``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.speedup import average_speedup, pairwise_speedups
from repro.data.datasets import DATASETS
from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentResult, run_response_time_experiment

#: The two algorithms this figure compares.
BASELINE = "R-Tree"
CANDIDATE = "GPU: unicomp"


@dataclass
class SpeedupSummary:
    """Per-point speedups plus the figure's headline averages."""

    speedups: Dict[Tuple[str, float], float]
    average: float
    per_dataset_average: Dict[str, float]

    def rows(self) -> List[Tuple[str, float, float]]:
        """(dataset, eps, speedup) rows sorted by dataset then eps."""
        return [(ds, eps, s) for (ds, eps), s in sorted(self.speedups.items())]


def speedups_from_result(result: ExperimentResult,
                         baseline: str = BASELINE,
                         candidate: str = CANDIDATE) -> SpeedupSummary:
    """Derive the Figure 7 (or Figure 8) speedups from measured records."""
    base_map = result.time_map(baseline)
    cand_map = result.time_map(candidate)
    speedups = pairwise_speedups(base_map, cand_map)
    if not speedups:
        raise ValueError(
            f"result contains no overlapping measurements for {baseline!r} "
            f"and {candidate!r}")
    per_dataset: Dict[str, List[float]] = {}
    for (dataset, _eps), value in speedups.items():
        per_dataset.setdefault(dataset, []).append(value)
    per_dataset_average = {ds: average_speedup(vals) for ds, vals in per_dataset.items()}
    return SpeedupSummary(speedups=speedups,
                          average=average_speedup(speedups.values()),
                          per_dataset_average=per_dataset_average)


def run_fig7(n_points: Optional[int] = None,
             datasets: Optional[Sequence[str]] = None,
             trials: int = 1, seed: int = 0) -> SpeedupSummary:
    """Run CPU-RTREE and GPU-SJ+UNICOMP on the chosen datasets and summarize.

    ``datasets`` defaults to the full Table I registry (all sixteen datasets),
    matching the paper; pass a subset for a quicker sweep.
    """
    names = list(datasets) if datasets is not None else list(DATASETS)
    result = run_response_time_experiment(names, algorithms=(BASELINE, CANDIDATE),
                                          n_points=n_points, trials=trials, seed=seed)
    return speedups_from_result(result)


def format_fig7(summary: SpeedupSummary) -> str:
    """Render the speedup table and the headline average."""
    table = format_table(("dataset", "eps", "speedup_vs_rtree"), summary.rows(),
                         title="Figure 7: speedup of GPU-SJ (UNICOMP) over CPU-RTREE")
    per_ds = format_table(("dataset", "avg_speedup"),
                          sorted(summary.per_dataset_average.items()),
                          title="Per-dataset averages")
    return (f"{table}\n\n{per_ds}\n\nAverage speedup (all measurements): "
            f"{summary.average:.2f}x  [paper: 26.9x]")
