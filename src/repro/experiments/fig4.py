"""Figure 4: response time vs ε on the real-world datasets (SW-, SDSS-).

Six panels (SW2DA, SW2DB, SDSS2DA, SDSS2DB, SW3DA, SW3DB), each plotting the
five algorithms' response times over the dataset's ε sweep.  The reproduction
runs on the scaled-down surrogate datasets; the expected *shape* is that
GPU-SJ (with and without UNICOMP) is fastest, SUPEREGO next, CPU-RTREE
slowest among the indexed approaches, with the ε-independent brute force
crossing the R-tree curve only at large ε on the densest configurations.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.data.datasets import REAL_WORLD_DATASETS
from repro.experiments.report import format_series, format_table
from repro.experiments.runner import (
    ExperimentResult,
    default_figure_algorithms,
    figure_machine_note,
    run_response_time_experiment,
)


def run_fig4(n_points: Optional[int] = None,
             datasets: Sequence[str] = REAL_WORLD_DATASETS,
             algorithms: Optional[Sequence[str]] = None,
             eps_values: Optional[Dict[str, Sequence[float]]] = None,
             trials: int = 1, seed: int = 0) -> ExperimentResult:
    """Run the Figure 4 measurement matrix on the real-world surrogates.

    ``algorithms`` defaults to the five paper algorithms, plus the parallel
    engine variants when this machine passes the multi-core gate
    (:func:`~repro.experiments.runner.default_figure_algorithms`).
    """
    if algorithms is None:
        algorithms = default_figure_algorithms()
    return run_response_time_experiment(datasets, algorithms=algorithms,
                                        n_points=n_points, eps_values=eps_values,
                                        trials=trials, seed=seed)


def format_fig4(result: ExperimentResult) -> str:
    """Render the per-panel series followed by the full row table."""
    lines = ["Figure 4: response time vs eps, real-world datasets (scaled surrogates)",
             figure_machine_note()]
    for dataset in result.datasets():
        for algorithm in result.algorithms():
            xs, ys = result.series(dataset, algorithm)
            if xs:
                lines.append(format_series(f"{dataset} / {algorithm}", xs, ys))
    lines.append("")
    lines.append(format_table(("dataset", "eps", "algorithm", "time_s", "pairs"),
                              result.to_rows()))
    return "\n".join(lines)
