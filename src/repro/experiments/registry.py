"""Experiment registry: one entry per table/figure of the evaluation section.

The registry powers the ``python -m repro.experiments`` command line and the
pytest-benchmark targets; each entry couples the ``run_*`` function with the
matching ``format_*`` renderer and a short description referencing DESIGN.md's
per-experiment index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from repro.experiments import (engine_compare, fig1, fig4, fig5, fig6, fig7,
                               fig8, fig9, outofcore, scaling, table1, table2)


@dataclass(frozen=True)
class Experiment:
    """A runnable experiment regenerating one paper table/figure."""

    experiment_id: str
    description: str
    run: Callable[..., Any]
    render: Callable[[Any], str]

    def run_and_render(self, **kwargs: Any) -> str:
        """Run the experiment and return its text rendering."""
        return self.render(self.run(**kwargs))


def _fig1_run(**kwargs: Any):
    """Run both panels of Figure 1."""
    return fig1.run_fig1a(**kwargs), fig1.run_fig1b(**kwargs)


def _fig1_render(result) -> str:
    rows_a, rows_b = result
    return fig1.format_fig1(rows_a, rows_b)


#: All experiments keyed by their identifier.
EXPERIMENTS: Dict[str, Experiment] = {
    "fig1": Experiment("fig1", "R-tree motivation: time & avg neighbors vs dimension / eps",
                       _fig1_run, _fig1_render),
    "fig4": Experiment("fig4", "Response time vs eps on the real-world surrogates",
                       fig4.run_fig4, fig4.format_fig4),
    "fig5": Experiment("fig5", "Response time vs eps on the synthetic 2M-scale datasets",
                       fig5.run_fig5, fig5.format_fig5),
    "fig6": Experiment("fig6", "Response time vs eps on the synthetic 10M-scale datasets",
                       fig6.run_fig6, fig6.format_fig6),
    "fig7": Experiment("fig7", "Speedup of GPU-SJ (UNICOMP) over CPU-RTREE",
                       fig7.run_fig7, fig7.format_fig7),
    "fig8": Experiment("fig8", "Speedup of GPU-SJ (UNICOMP) over SUPEREGO",
                       fig8.run_fig8, fig8.format_fig8),
    "fig9": Experiment("fig9", "UNICOMP response-time ratio (without / with)",
                       fig9.run_fig9, fig9.format_fig9),
    "table1": Experiment("table1", "Dataset summary (Table I)",
                         table1.run_table1, table1.format_table1),
    "table2": Experiment("table2", "Kernel metrics with/without UNICOMP (Table II)",
                         table2.run_table2, table2.format_table2),
    "engine": Experiment("engine", "Unified query engine: backend comparison "
                         "(self-join + bipartite, all registered backends)",
                         engine_compare.run_engine_compare,
                         engine_compare.format_engine_compare),
    "scaling": Experiment("scaling", "Parallel subsystem: multiprocess "
                          "self-join speedup vs worker count",
                          scaling.run_scaling, scaling.format_scaling),
    "outofcore": Experiment("outofcore", "Out-of-core dataset layer: peak "
                            "RSS vs dataset size, in-memory array vs "
                            "disk-streamed SpatialStore",
                            outofcore.run_outofcore,
                            outofcore.format_outofcore),
}


def list_experiments() -> List[str]:
    """Identifiers of all registered experiments."""
    return list(EXPERIMENTS)


def get_experiment(experiment_id: str) -> Experiment:
    """Look up an experiment by id (raises KeyError with the known ids)."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError as exc:
        raise KeyError(f"unknown experiment {experiment_id!r}; "
                       f"known: {sorted(EXPERIMENTS)}") from exc
