"""Figure 8: speedup of GPU-SJ + UNICOMP over SUPEREGO (32 threads).

Derived from the same measurements as Figures 4–6.  The paper reports an
average speedup of 2.38× across all datasets and about 2× on the real-world
datasets, with only six (dataset, ε) points where SUPEREGO wins.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.speedup import average_speedup
from repro.data.datasets import DATASETS, REAL_WORLD_DATASETS
from repro.experiments.fig7 import SpeedupSummary, speedups_from_result
from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentResult, run_response_time_experiment

BASELINE = "SuperEGO"
CANDIDATE = "GPU: unicomp"


def speedups_vs_superego(result: ExperimentResult) -> SpeedupSummary:
    """Derive the Figure 8 speedups from measured records."""
    return speedups_from_result(result, baseline=BASELINE, candidate=CANDIDATE)


def run_fig8(n_points: Optional[int] = None,
             datasets: Optional[Sequence[str]] = None,
             trials: int = 1, seed: int = 0,
             n_threads: Optional[int] = None) -> SpeedupSummary:
    """Run SUPEREGO and GPU-SJ+UNICOMP on the chosen datasets and summarize."""
    names = list(datasets) if datasets is not None else list(DATASETS)
    result = run_response_time_experiment(names, algorithms=(BASELINE, CANDIDATE),
                                          n_points=n_points, trials=trials,
                                          seed=seed, n_threads=n_threads)
    return speedups_vs_superego(result)


def real_world_average(summary: SpeedupSummary) -> Optional[float]:
    """Average speedup restricted to the real-world datasets (paper: ~2x)."""
    values: List[float] = [v for (ds, _eps), v in summary.speedups.items()
                           if ds in REAL_WORLD_DATASETS]
    if not values:
        return None
    return average_speedup(values)


def slower_points(summary: SpeedupSummary) -> Dict[Tuple[str, float], float]:
    """The (dataset, eps) points where SUPEREGO beats GPU-SJ (speedup < 1)."""
    return {key: value for key, value in summary.speedups.items() if value < 1.0}


def format_fig8(summary: SpeedupSummary) -> str:
    """Render the speedup table plus the paper's headline statistics."""
    table = format_table(("dataset", "eps", "speedup_vs_superego"), summary.rows(),
                         title="Figure 8: speedup of GPU-SJ (UNICOMP) over SUPEREGO")
    real_avg = real_world_average(summary)
    slower = slower_points(summary)
    lines = [table, "",
             f"Average speedup (all measurements): {summary.average:.2f}x  [paper: 2.38x]"]
    if real_avg is not None:
        lines.append(f"Average speedup (real-world datasets): {real_avg:.2f}x  [paper: ~2x]")
    lines.append(f"Measurements where SUPEREGO wins: {len(slower)}  [paper: 6]")
    return "\n".join(lines)
