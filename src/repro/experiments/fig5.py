"""Figure 5: response time vs ε on the 2–6-D synthetic datasets (2M scale).

Five panels (Syn2D2M … Syn6D2M).  Uniform data is the worst case for the
grid index (every cell non-empty), yet the expected shape is unchanged:
GPU-SJ with UNICOMP fastest, then GPU-SJ, SUPEREGO, CPU-RTREE; the UNICOMP
benefit grows with dimensionality (see Figure 9).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.data.datasets import SYN_2M_DATASETS
from repro.experiments.report import format_series, format_table
from repro.experiments.runner import (
    ExperimentResult,
    default_figure_algorithms,
    figure_machine_note,
    run_response_time_experiment,
)


def run_fig5(n_points: Optional[int] = None,
             datasets: Sequence[str] = SYN_2M_DATASETS,
             algorithms: Optional[Sequence[str]] = None,
             eps_values: Optional[Dict[str, Sequence[float]]] = None,
             trials: int = 1, seed: int = 0) -> ExperimentResult:
    """Run the Figure 5 measurement matrix on the 2M-scale synthetic datasets.

    ``algorithms`` defaults to the five paper algorithms, plus the parallel
    engine variants when this machine passes the multi-core gate
    (:func:`~repro.experiments.runner.default_figure_algorithms`).
    """
    if algorithms is None:
        algorithms = default_figure_algorithms()
    return run_response_time_experiment(datasets, algorithms=algorithms,
                                        n_points=n_points, eps_values=eps_values,
                                        trials=trials, seed=seed)


def format_fig5(result: ExperimentResult) -> str:
    """Render the per-panel series followed by the full row table."""
    lines = ["Figure 5: response time vs eps, synthetic 2M-scale datasets (scaled)",
             figure_machine_note()]
    for dataset in result.datasets():
        for algorithm in result.algorithms():
            xs, ys = result.series(dataset, algorithm)
            if xs:
                lines.append(format_series(f"{dataset} / {algorithm}", xs, ys))
    lines.append("")
    lines.append(format_table(("dataset", "eps", "algorithm", "time_s", "pairs"),
                              result.to_rows()))
    return "\n".join(lines)
