"""Scaling experiment: multiprocess self-join speedup vs worker count.

Not a figure of the paper — this experiment exists for the parallel
execution subsystem (:mod:`repro.parallel`): it times the engine self-join
on the default synthetic dataset once on the serial ``vectorized`` backend
and once per requested worker count on ``multiprocess(w)``, and reports the
speedup relative to the serial run.  On a multi-core host the speedup
should approach the worker count until memory bandwidth saturates; the
rendered table records the host's CPU count so single-core CI numbers are
interpretable (a pool cannot beat serial on one core — the overhead column
is the interesting number there).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.stats import mean_and_std
from repro.data.datasets import DATASETS
from repro.engine import Query, QueryPlanner, execute
from repro.experiments.report import format_table
from repro.utils.timing import Timer

#: Worker counts swept by default (the acceptance point is 4 workers).
DEFAULT_WORKER_COUNTS = (1, 2, 4)

#: Default synthetic dataset (2-D uniform at the 2M-scale registry entry).
DEFAULT_DATASET = "Syn2D2M"


@dataclass
class ScalingRow:
    """One timed configuration of the scaling sweep."""

    label: str
    workers: int          # 0 for the serial baseline
    time_s: float
    time_std: float
    speedup: float        # serial_time / time_s
    num_pairs: int


def _time_backend(backend: str, query: Query, trials: int) -> tuple:
    planner = QueryPlanner(backend=backend)
    times: List[float] = []
    num_pairs = 0
    for _ in range(max(1, trials)):
        with Timer() as timer:
            num_pairs = execute(planner.plan(query)).num_pairs
        times.append(timer.elapsed)
    mean, std = mean_and_std(times)
    return mean, std, num_pairs


def run_scaling(n_points: Optional[int] = None, trials: int = 1, seed: int = 0,
                eps: Optional[float] = None,
                workers: Sequence[int] = DEFAULT_WORKER_COUNTS,
                dataset: str = DEFAULT_DATASET) -> List[ScalingRow]:
    """Time the self-join serially and at each worker count.

    ``eps`` defaults to the midpoint of the dataset's density-rescaled ε
    sweep, giving a result set representative of the paper's figures.
    """
    spec = DATASETS[dataset]
    points = spec.generate(n_points=n_points, seed=seed)
    if eps is None:
        sweep = spec.scaled_eps(n_points)
        eps = float(sweep[len(sweep) // 2])
    query = Query.self_join(points, eps)

    rows: List[ScalingRow] = []
    serial_time, serial_std, serial_pairs = _time_backend(
        "vectorized", query, trials)
    rows.append(ScalingRow(label="vectorized (serial)", workers=0,
                           time_s=serial_time, time_std=serial_std,
                           speedup=1.0, num_pairs=serial_pairs))
    for w in workers:
        mean, std, pairs = _time_backend(f"multiprocess({int(w)})", query, trials)
        rows.append(ScalingRow(
            label=f"multiprocess({int(w)})", workers=int(w), time_s=mean,
            time_std=std, speedup=serial_time / mean if mean > 0 else 0.0,
            num_pairs=pairs))
    return rows


def format_scaling(rows: List[ScalingRow]) -> str:
    """Render the sweep as an aligned table (host core count in the title)."""
    return format_table(
        ("backend", "workers", "time_s", "time_std", "speedup", "pairs"),
        [(r.label, r.workers, r.time_s, r.time_std, r.speedup, r.num_pairs)
         for r in rows],
        title=f"Self-join scaling vs worker count "
              f"(host cpus: {os.cpu_count()}, speedup vs serial vectorized)")
