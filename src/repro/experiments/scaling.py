"""Scaling experiment: multiprocess self-join speedup vs worker count.

Not a figure of the paper — this experiment exists for the parallel
execution subsystem (:mod:`repro.parallel`): it times the engine self-join
on the default synthetic dataset once on the serial ``vectorized`` backend
and once per requested worker count on ``multiprocess(w)``, and reports the
speedup relative to the serial run.  On a multi-core host the speedup
should approach the worker count until memory bandwidth saturates; the
rendered table records the host's CPU count so single-core CI numbers are
interpretable (a pool cannot beat serial on one core — the overhead column
is the interesting number there).

Every configuration runs inside one :class:`~repro.engine.session.
EngineSession` per backend, mirroring how a long-lived service would hold
the dataset: the **cold** column is the session's first query (pool
creation + shared-memory attach + index build + join), the **warm** column
the mean of the following trials (index cached, pool persistent, dataset
never re-shipped).  The cold−warm gap is exactly the per-query start-up
cost the session lifecycle amortizes away.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.stats import mean_and_std
from repro.data.datasets import DATASETS
from repro.engine import EngineSession
from repro.experiments.report import format_table
from repro.utils.timing import Timer

#: Worker counts swept by default (the acceptance point is 4 workers).
DEFAULT_WORKER_COUNTS = (1, 2, 4)

#: Default synthetic dataset (2-D uniform at the 2M-scale registry entry).
DEFAULT_DATASET = "Syn2D2M"


@dataclass
class ScalingRow:
    """One timed configuration of the scaling sweep."""

    label: str
    workers: int          # 0 for the serial baseline
    time_s: float         # warm mean (session already attached, index cached)
    time_std: float
    cold_time_s: float    # first session query: attach + index build + join
    speedup: float        # serial warm time_s / warm time_s
    num_pairs: int


def _time_backend(backend: str, points, eps: float,
                  trials: int) -> Tuple[float, float, float, int]:
    """Time one backend inside a session: ``(warm_mean, warm_std, cold, pairs)``."""
    num_pairs = 0
    times: List[float] = []
    # keep_warm=False: the sweep's sessions are never revived (every run
    # regenerates the dataset), so parking pools would only leak idle
    # workers and shared-memory copies until interpreter exit.
    session = EngineSession(points, backend=backend, keep_warm=False)
    try:
        # Cold must cover the whole first-query cost the session amortizes,
        # so the open() — backend attach: pool fork + shared-memory dataset
        # copy — is timed together with the first query.
        with Timer() as cold_timer:
            session.open()
            num_pairs = session.self_join(eps).num_pairs
        for _ in range(max(1, trials)):
            with Timer() as timer:
                num_pairs = session.self_join(eps).num_pairs
            times.append(timer.elapsed)
    finally:
        session.close()
    mean, std = mean_and_std(times)
    return mean, std, cold_timer.elapsed, num_pairs


def run_scaling(n_points: Optional[int] = None, trials: int = 1, seed: int = 0,
                eps: Optional[float] = None,
                workers: Sequence[int] = DEFAULT_WORKER_COUNTS,
                dataset: str = DEFAULT_DATASET) -> List[ScalingRow]:
    """Time the self-join serially and at each worker count.

    ``eps`` defaults to the midpoint of the dataset's density-rescaled ε
    sweep, giving a result set representative of the paper's figures.
    """
    spec = DATASETS[dataset]
    points = spec.generate(n_points=n_points, seed=seed)
    if eps is None:
        sweep = spec.scaled_eps(n_points)
        eps = float(sweep[len(sweep) // 2])

    rows: List[ScalingRow] = []
    serial_time, serial_std, serial_cold, serial_pairs = _time_backend(
        "vectorized", points, eps, trials)
    rows.append(ScalingRow(label="vectorized (serial)", workers=0,
                           time_s=serial_time, time_std=serial_std,
                           cold_time_s=serial_cold,
                           speedup=1.0, num_pairs=serial_pairs))
    for w in workers:
        mean, std, cold, pairs = _time_backend(f"multiprocess({int(w)})",
                                               points, eps, trials)
        rows.append(ScalingRow(
            label=f"multiprocess({int(w)})", workers=int(w), time_s=mean,
            time_std=std, cold_time_s=cold,
            speedup=serial_time / mean if mean > 0 else 0.0,
            num_pairs=pairs))
    return rows


def format_scaling(rows: List[ScalingRow]) -> str:
    """Render the sweep as an aligned table (host core count in the title)."""
    return format_table(
        ("backend", "workers", "warm_s", "warm_std", "cold_s", "speedup",
         "pairs"),
        [(r.label, r.workers, r.time_s, r.time_std, r.cold_time_s, r.speedup,
          r.num_pairs)
         for r in rows],
        title=f"Self-join scaling vs worker count "
              f"(host cpus: {os.cpu_count()}; warm = session query on the "
              f"persistent pool, cold = first query incl. pool+index start-up; "
              f"speedup vs serial warm)")
