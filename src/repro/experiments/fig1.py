"""Figure 1: the motivating R-tree experiment.

Panel (a) sweeps the dimensionality (2–6) of a uniform dataset at a fixed ε
and reports the R-tree self-join response time together with the average
number of ε-neighbors per point: the response time is worst at 2-D (huge
result sets) and 6-D (exhaustive index searches), the "two computational
problems" the paper opens with.  Panel (b) fixes the 6-D dataset and sweeps ε.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.baselines.rtree_selfjoin import build_rtree, rtree_selfjoin
from repro.data.synthetic import uniform_dataset
from repro.experiments.report import format_table
from repro.utils.timing import Timer

#: Paper configuration of Figure 1a: 2 million points, ε = 1, dims 2–6.
PAPER_POINTS = 2_000_000
PAPER_EPS_1A = 1.0
#: Paper configuration of Figure 1b: the 6-D dataset, ε ∈ {4, 6, 8, 10, 12}.
PAPER_EPS_1B = (4.0, 6.0, 8.0, 10.0, 12.0)


@dataclass
class Fig1Row:
    """One measured point of Figure 1 (either panel)."""

    dimension: int
    eps: float
    time_s: float
    avg_neighbors: float
    n_points: int


def _scaled_eps(paper_eps: float, n_points: int, n_dims: int) -> float:
    """Density-preserving ε rescaling (see repro.data.datasets)."""
    return float(paper_eps * (PAPER_POINTS / n_points) ** (1.0 / n_dims))


def run_fig1a(n_points: int = 3000, dimensions: Sequence[int] = (2, 3, 4, 5, 6),
              seed: int = 0, rescale_eps: bool = True) -> List[Fig1Row]:
    """R-tree self-join time and average neighbors vs dimensionality.

    Parameters
    ----------
    n_points:
        Scaled dataset size (paper: 2 million).
    dimensions:
        Dimensionalities to sweep (paper: 2–6).
    rescale_eps:
        Rescale ε = 1 by the density rule so the neighbor counts track the
        paper's; set ``False`` to use ε = 1 literally.
    """
    rows: List[Fig1Row] = []
    for dim in dimensions:
        points = uniform_dataset(n_points, dim, seed=seed)
        eps = _scaled_eps(PAPER_EPS_1A, n_points, dim) if rescale_eps else PAPER_EPS_1A
        tree = build_rtree(points)
        with Timer() as t:
            out = rtree_selfjoin(points, eps, tree=tree)
        avg_neighbors = out.result.num_pairs / n_points - 1.0
        rows.append(Fig1Row(dimension=dim, eps=eps, time_s=t.elapsed,
                            avg_neighbors=avg_neighbors, n_points=n_points))
    return rows


def run_fig1b(n_points: int = 3000, dimension: int = 6,
              paper_eps: Sequence[float] = PAPER_EPS_1B, seed: int = 0,
              rescale_eps: bool = True) -> List[Fig1Row]:
    """R-tree self-join time and average neighbors vs ε on the 6-D dataset."""
    rows: List[Fig1Row] = []
    points = uniform_dataset(n_points, dimension, seed=seed)
    tree = build_rtree(points)
    for eps_paper in paper_eps:
        eps = _scaled_eps(eps_paper, n_points, dimension) if rescale_eps else float(eps_paper)
        with Timer() as t:
            out = rtree_selfjoin(points, eps, tree=tree)
        avg_neighbors = out.result.num_pairs / n_points - 1.0
        rows.append(Fig1Row(dimension=dimension, eps=eps, time_s=t.elapsed,
                            avg_neighbors=avg_neighbors, n_points=n_points))
    return rows


def format_fig1(rows_a: Sequence[Fig1Row], rows_b: Sequence[Fig1Row]) -> str:
    """Render both panels as text tables."""
    table_a = format_table(
        ("dimension", "eps", "time_s", "avg_neighbors"),
        [(r.dimension, r.eps, r.time_s, r.avg_neighbors) for r in rows_a],
        title="Figure 1a: R-tree self-join vs dimensionality (scaled)")
    table_b = format_table(
        ("dimension", "eps", "time_s", "avg_neighbors"),
        [(r.dimension, r.eps, r.time_s, r.avg_neighbors) for r in rows_b],
        title="Figure 1b: R-tree self-join vs eps, 6-D dataset (scaled)")
    return table_a + "\n\n" + table_b
