"""Engine backend comparison: one workload, every registered backend.

Not a figure of the paper — this experiment exists for the unified query
engine: it runs the same self-join *and* bipartite-join workload through
every registered execution backend (``repro.engine.backends``) and reports
response time, pair counts and the kernels' work counters side by side.
Besides being a quick performance overview, it doubles as an end-to-end
consistency check: every backend must report the same pair count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.stats import mean_and_std
from repro.data.synthetic import uniform_dataset
from repro.engine import Query, QueryPlanner, execute
from repro.experiments.report import format_table
from repro.utils.timing import Timer

#: Backends compared by default; the reference backends are orders of
#: magnitude slower, so they only run at small scales (see ``run``).
DEFAULT_BACKENDS = ("vectorized", "sharded", "multiprocess", "cellwise",
                    "bruteforce")

#: Reference backends excluded above this dataset size.
SLOW_BACKEND_LIMIT = 1500
SLOW_BACKENDS = ("pointwise", "simulated")


@dataclass
class EngineCompareRow:
    """One (query kind, backend) measurement."""

    kind: str
    backend: str
    time_s: float
    num_pairs: int
    distance_calcs: int
    cells_checked: int


def run_engine_compare(n_points: Optional[int] = None, trials: int = 1,
                       seed: int = 0, eps: float = 1.0,
                       backends: Optional[Sequence[str]] = None,
                       ) -> List[EngineCompareRow]:
    """Time every backend on a uniform self-join and bipartite join."""
    n = 2000 if n_points is None else int(n_points)
    points = uniform_dataset(n, 2, seed=seed, low=0.0, high=20.0)
    probe = uniform_dataset(max(1, n // 4), 2, seed=seed + 1, low=0.0, high=20.0)
    names = list(backends) if backends is not None else list(DEFAULT_BACKENDS)
    if backends is None and n <= SLOW_BACKEND_LIMIT:
        names.extend(SLOW_BACKENDS)

    rows: List[EngineCompareRow] = []
    for name in names:
        unicomp = name not in ("pointwise", "bruteforce")
        queries = {
            "self-join": Query.self_join(points, eps, unicomp=unicomp),
            "bipartite": Query.bipartite_join(probe, points, eps),
        }
        for kind, query in queries.items():
            planner = QueryPlanner(backend=name)
            times = []
            result = None
            for _ in range(max(1, trials)):
                with Timer() as timer:
                    result = execute(planner.plan(query))
                    pairs = result.num_pairs
                times.append(timer.elapsed)
            mean, _ = mean_and_std(times)
            rows.append(EngineCompareRow(
                kind=kind, backend=name, time_s=mean, num_pairs=pairs,
                distance_calcs=result.stats.distance_calcs,
                cells_checked=result.stats.cells_checked))
    return rows


def format_engine_compare(rows: List[EngineCompareRow]) -> str:
    """Render the comparison as an aligned table."""
    return format_table(
        ("kind", "backend", "time_s", "pairs", "distance_calcs", "cells_checked"),
        [(r.kind, r.backend, r.time_s, r.num_pairs, r.distance_calcs,
          r.cells_checked) for r in rows],
        title="Engine backend comparison (uniform 2-D workload)")
