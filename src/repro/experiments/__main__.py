"""Command-line entry point: ``python -m repro.experiments <experiment-id>``.

Examples
--------
Run the Table II reproduction at the default scale::

    python -m repro.experiments table2

Run the Figure 5 sweep on 2000-point datasets with the GPU algorithms only::

    python -m repro.experiments fig5 --points 2000 \
        --algorithms "GPU" "GPU: unicomp"
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional

from repro.experiments.registry import EXPERIMENTS, get_experiment


def build_parser() -> argparse.ArgumentParser:
    """Create the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures (scaled).")
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"],
                        help="experiment id (or 'all')")
    parser.add_argument("--points", type=int, default=None,
                        help="override the scaled dataset size")
    parser.add_argument("--trials", type=int, default=1,
                        help="timed repetitions per measurement")
    parser.add_argument("--seed", type=int, default=0, help="dataset seed")
    parser.add_argument("--datasets", nargs="*", default=None,
                        help="restrict to these dataset names")
    parser.add_argument("--algorithms", nargs="*", default=None,
                        help="restrict to these algorithm labels")
    parser.add_argument("--workers", nargs="*", type=int, default=None,
                        help="worker counts for the scaling experiment")
    return parser


def _kwargs_for(experiment_id: str, args: argparse.Namespace) -> Dict[str, Any]:
    """Translate CLI options into the experiment's keyword arguments."""
    kwargs: Dict[str, Any] = {}
    if experiment_id == "fig1":
        if args.points is not None:
            kwargs["n_points"] = args.points
        if args.seed:
            kwargs["seed"] = args.seed
        return kwargs
    if experiment_id == "table1":
        if args.points is not None:
            kwargs["n_points"] = args.points
        return kwargs
    if experiment_id == "table2":
        if args.points is not None:
            kwargs["n_points"] = args.points
        if args.seed:
            kwargs["seed"] = args.seed
        return kwargs
    if experiment_id == "engine":
        if args.points is not None:
            kwargs["n_points"] = args.points
        if args.trials != 1:
            kwargs["trials"] = args.trials
        if args.seed:
            kwargs["seed"] = args.seed
        if args.algorithms:
            kwargs["backends"] = args.algorithms
        return kwargs
    if experiment_id == "outofcore":
        if args.points is not None:
            kwargs["n_points"] = args.points
        if args.seed:
            kwargs["seed"] = args.seed
        return kwargs
    if experiment_id == "scaling":
        if args.points is not None:
            kwargs["n_points"] = args.points
        if args.trials != 1:
            kwargs["trials"] = args.trials
        if args.seed:
            kwargs["seed"] = args.seed
        if args.workers:
            kwargs["workers"] = tuple(args.workers)
        if args.datasets:
            if len(args.datasets) > 1:
                raise SystemExit("the scaling experiment sweeps worker counts "
                                 "over a single dataset; pass one --datasets "
                                 f"value, got {args.datasets}")
            kwargs["dataset"] = args.datasets[0]
        return kwargs
    # Figure 4-9 experiments share the response-time signature.
    if args.points is not None:
        kwargs["n_points"] = args.points
    if args.trials != 1:
        kwargs["trials"] = args.trials
    if args.seed:
        kwargs["seed"] = args.seed
    if args.datasets:
        kwargs["datasets"] = args.datasets
    if args.algorithms and experiment_id in ("fig4", "fig5", "fig6"):
        kwargs["algorithms"] = args.algorithms
    return kwargs


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    ids = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for experiment_id in ids:
        experiment = get_experiment(experiment_id)
        print(f"== {experiment_id}: {experiment.description}")
        print(experiment.run_and_render(**_kwargs_for(experiment_id, args)))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
