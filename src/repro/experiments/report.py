"""Plain-text rendering of experiment tables and series.

The paper presents its evaluation as figures (response time vs ε) and two
tables; since this reproduction is terminal-oriented, every experiment is
rendered as an aligned text table whose rows/series correspond one-to-one to
the points of the original figure.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Render an aligned text table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of row tuples; cells are converted with :func:`format_cell`.
    title:
        Optional title line printed above the table.
    """
    str_rows: List[List[str]] = [[format_cell(c) for c in row] for row in rows]
    str_headers = [str(h) for h in headers]
    widths = [len(h) for h in str_headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(str_headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_cell(value: object) -> str:
    """Format one table cell (floats with 4 significant decimals)."""
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


def format_series(name: str, xs: Sequence[float], ys: Sequence[float],
                  x_label: str = "eps", y_label: str = "time_s") -> str:
    """Render one figure series as ``name: (x, y) ...`` pairs."""
    pairs = ", ".join(f"({format_cell(float(x))}, {format_cell(float(y))})"
                      for x, y in zip(xs, ys))
    return f"{name} [{x_label} -> {y_label}]: {pairs}"
