"""Out-of-core experiment: peak RSS vs dataset size, array vs store.

Not a figure of the paper — this experiment exists for the out-of-core
dataset layer (:mod:`repro.data.store`): for each dataset size it runs the
same self-join twice in *fresh subprocesses* (so ``ru_maxrss`` measures one
configuration each) —

* **ArraySource (vectorized)** — the in-memory pipeline: generate the
  dataset, build the global grid index, join.  Peak RSS grows O(n).
* **SpatialStore (sharded, streamed)** — the out-of-core pipeline: open the
  pre-written store and stream the join shard-by-shard (each shard reads
  its slice + ε-halo from disk and indexes it locally).  Peak RSS grows
  O(largest shard), dominated at small scales by the interpreter baseline.

Both subprocesses print an order-independent multiset digest of their
result pairs; the rendered table records it so equal digests certify the
streamed join produced the **bit-identical pair set** of the in-memory
path.  ``benchmarks/test_bench_outofcore.py`` persists the rendering to
``benchmarks/reports/outofcore.txt``.
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from repro.data.store import SpatialStore, default_cell_width
from repro.data.synthetic import uniform_dataset
from repro.experiments.report import format_table

#: Dataset sizes swept by default (kept modest: every size runs two
#: subprocesses; push higher through ``--points`` / the benchmark env).
DEFAULT_SIZES = (20_000, 60_000)

#: Shards of the streamed configuration (peak memory ~ dataset / shards).
DEFAULT_SHARDS = 16

_MIX_A = np.uint64(0x9E3779B97F4A7C15)
_MIX_B = np.uint64(0xC2B2AE3D27D4EB4F)
_MIX_C = np.uint64(0xFF51AFD7ED558CCD)


class StreamingPairDigest:
    """Order-independent digest of a pair multiset, foldable fragment-wise.

    Each ``(key, value)`` pair is mixed into a 64-bit hash and the hashes
    are *summed* mod 2**64, so the digest is invariant under emission order
    (shards emit in a different order than the global kernel) while any
    changed, missing or duplicated pair changes it.  Because it folds one
    fragment at a time, a result can be digested *as it streams* — the
    memory-capped out-of-core test wires it into the backend's sink so not
    even the result pairs accumulate.
    """

    def __init__(self) -> None:
        self._acc = np.uint64(0)
        self._total = np.uint64(0)

    def update(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Fold one fragment of parallel key/value arrays into the digest."""
        with np.errstate(over="ignore"):  # mod-2**64 wrap-around is the point
            x = (np.asarray(keys).astype(np.uint64) * _MIX_A) \
                ^ (np.asarray(values).astype(np.uint64) * _MIX_B)
            x ^= x >> np.uint64(33)
            x *= _MIX_C
            x ^= x >> np.uint64(29)
            self._acc += x.sum(dtype=np.uint64)
            self._total += np.uint64(keys.shape[0])

    def hexdigest(self) -> str:
        """Digest of everything folded so far (pair count included)."""
        with np.errstate(over="ignore"):
            return f"{int(self._acc ^ (self._total * _MIX_A)):016x}"


def pair_multiset_digest(fragments) -> str:
    """Digest a sink's whole pair multiset (see :class:`StreamingPairDigest`).

    Walks the fragments in place — no concatenation — so it fits the same
    memory budget as the streamed join that produced them.
    """
    digest = StreamingPairDigest()
    for keys, values in fragments.parts():
        digest.update(keys, values)
    return digest.hexdigest()


@dataclass
class OutOfCoreRow:
    """One measured configuration of the out-of-core sweep."""

    n_points: int
    source: str            # "array" or "store"
    backend: str
    dataset_mb: float      # on-disk store size / in-memory array size
    peak_rss_mb: float     # subprocess ru_maxrss
    num_pairs: int
    digest: str


_CHILD_PRELUDE = """\
import resource, sys
import numpy as np
from repro.experiments.outofcore import pair_multiset_digest
"""

_ARRAY_CHILD = _CHILD_PRELUDE + """\
from repro.data.synthetic import uniform_dataset
from repro.engine import Query, run_query

points = uniform_dataset({n}, {dims}, seed={seed})
result = run_query(Query.self_join(points, {eps}))
digest = pair_multiset_digest(result.fragments)
rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print("RESULT", result.num_pairs, digest, rss_kb)
"""

_STORE_CHILD = _CHILD_PRELUDE + """\
from repro.data.store import SpatialStore
from repro.engine import EngineSession

store = SpatialStore.open({path!r})
with EngineSession(store, backend="sharded({shards})") as session:
    result = session.self_join({eps})
    assert session._points is None, "streamed join materialized the dataset"
digest = pair_multiset_digest(result.fragments)
rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print("RESULT", result.num_pairs, digest, rss_kb)
"""


def _run_child(script: str) -> tuple:
    """Run a measurement subprocess; returns ``(num_pairs, digest, rss_mb)``."""
    proc = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True,
        timeout=600, env=_child_env())
    if proc.returncode != 0:
        raise RuntimeError(f"out-of-core child failed:\n{proc.stderr}")
    for line in proc.stdout.splitlines():
        if line.startswith("RESULT "):
            _, pairs, digest, rss_kb = line.split()
            return int(pairs), digest, float(rss_kb) / 1024.0
    raise RuntimeError(f"no RESULT line in child output:\n{proc.stdout}")


def _child_env() -> dict:
    import os

    env = dict(os.environ)
    src_dir = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src_dir + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return env


def _dir_size_mb(path: Path) -> float:
    return sum(f.stat().st_size for f in Path(path).rglob("*")
               if f.is_file()) / 1e6


def run_outofcore(n_points: Optional[int] = None,
                  sizes: Sequence[int] = DEFAULT_SIZES, n_dims: int = 2,
                  seed: int = 0, eps: Optional[float] = None,
                  n_shards: int = DEFAULT_SHARDS,
                  workdir: Optional[str] = None) -> List[OutOfCoreRow]:
    """Measure peak RSS of the in-memory vs streamed self-join per size.

    ``eps`` defaults to a value giving a few neighbors per point at the
    largest size (so the result set does not dominate either measurement);
    ``n_points`` (the CLI override) replaces the whole size sweep.
    """
    if n_points is not None:
        sizes = (int(n_points),)
    rows: List[OutOfCoreRow] = []
    with tempfile.TemporaryDirectory(dir=workdir) as tmp:
        for n in sizes:
            points = uniform_dataset(int(n), n_dims, seed=seed)
            size_eps = float(eps) if eps is not None else \
                0.5 * default_cell_width(points, points_per_cell=8)
            store_path = Path(tmp) / f"store_{n}"
            store = SpatialStore.write(points, store_path)
            dataset_mb = points.nbytes / 1e6
            del points

            pairs_a, digest_a, rss_a = _run_child(_ARRAY_CHILD.format(
                n=int(n), dims=int(n_dims), seed=int(seed), eps=size_eps))
            rows.append(OutOfCoreRow(
                n_points=int(n), source="array", backend="vectorized",
                dataset_mb=dataset_mb, peak_rss_mb=rss_a,
                num_pairs=pairs_a, digest=digest_a))

            pairs_s, digest_s, rss_s = _run_child(_STORE_CHILD.format(
                path=str(store_path), shards=int(n_shards), eps=size_eps))
            rows.append(OutOfCoreRow(
                n_points=int(n), source="store", backend=f"sharded({n_shards})",
                dataset_mb=_dir_size_mb(store_path), peak_rss_mb=rss_s,
                num_pairs=pairs_s, digest=digest_s))
            del store
    return rows


def format_outofcore(rows: List[OutOfCoreRow]) -> str:
    """Render the sweep; flags any digest divergence between the sources."""
    digests = {}
    for r in rows:
        digests.setdefault(r.n_points, set()).add(r.digest)
    all_match = all(len(d) == 1 for d in digests.values())
    verdict = "bit-identical pair sets" if all_match else "DIGEST MISMATCH"
    return format_table(
        ("n_points", "source", "backend", "dataset_mb", "peak_rss_mb",
         "pairs", "digest"),
        [(r.n_points, r.source, r.backend, round(r.dataset_mb, 2),
          round(r.peak_rss_mb, 1), r.num_pairs, r.digest) for r in rows],
        title=f"Out-of-core self-join: peak RSS vs dataset size "
              f"(array = in-memory vectorized; store = disk-streamed "
              f"sharded; {verdict} per size)")
