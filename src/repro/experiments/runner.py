"""Algorithm dispatch and timed trials for the evaluation experiments.

The five algorithm labels match the legends of Figures 4–6:

* ``"R-Tree"`` — the sequential CPU search-and-refine baseline (index
  construction excluded from the timing, as in the paper),
* ``"SuperEGO"`` — the multi-threaded Super-EGO join (ego-sort + join timed),
* ``"GPU"`` — GPU-SJ without UNICOMP,
* ``"GPU: unicomp"`` — GPU-SJ with UNICOMP (the paper's headline
  configuration),
* ``"GPU: Brute Force"`` — the ε-independent all-pairs reference
  (result set not materialized, mirroring the single-kernel methodology).

Each measurement is repeated ``trials`` times (the paper uses 3) and the
mean response time is reported.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.stats import mean_and_std
from repro.baselines.bruteforce import bruteforce_count
from repro.baselines.rtree_selfjoin import build_rtree, rtree_selfjoin
from repro.baselines.superego import SuperEGO
from repro.core.selfjoin import GPUSelfJoin, SelfJoinConfig
from repro.data.datasets import DATASETS, DatasetSpec
from repro.utils.timing import Timer

#: Algorithm labels in the order the figures list them.
ALGORITHMS = ("GPU: Brute Force", "R-Tree", "SuperEGO", "GPU", "GPU: unicomp")

#: Algorithms whose response time does not depend on ε (run once per dataset).
EPS_INDEPENDENT = ("GPU: Brute Force",)

#: Engine-backed variants: ``Engine[<backend>]`` runs the self-join through
#: :mod:`repro.engine` on the named execution backend — parameterized names
#: work too (``Engine[multiprocess(4)]``) — so every registered backend can
#: be measured with the same harness as the paper's algorithms.  A
#: ``/<kernel-spec>`` suffix pins the kernel tier for the measurement:
#: ``Engine[sharded/numba]`` is the sharded backend on the numba tier
#: (shorthand for ``Engine[sharded(kernel=numba)]``).
ENGINE_ALGORITHM_PREFIX = "Engine["
ENGINE_ALGORITHMS = ("Engine[vectorized]", "Engine[cellwise]",
                     "Engine[bruteforce]", "Engine[sharded]",
                     "Engine[multiprocess]")

#: Parallel engine variants appended to the fig4–fig6 default algorithm sets
#: on a multi-core reference machine.  On fewer cores the pool/shard overhead
#: dominates and the curves say nothing about the paper's scaling story, so
#: the figures gate them on the host CPU count and record the decision in
#: the report header (see :func:`figure_machine_note`).
FIGURE_PARALLEL_ALGORITHMS = ("Engine[sharded]", "Engine[multiprocess]")

#: Minimum host CPUs for the parallel variants to enter the default set.
FIGURE_PARALLEL_MIN_CPUS = 4


def default_figure_algorithms() -> Tuple[str, ...]:
    """The fig4–fig6 default algorithm set on this machine.

    The five paper algorithms always; plus
    :data:`FIGURE_PARALLEL_ALGORITHMS` when the host has at least
    :data:`FIGURE_PARALLEL_MIN_CPUS` cores.
    """
    if (os.cpu_count() or 1) >= FIGURE_PARALLEL_MIN_CPUS:
        return tuple(ALGORITHMS) + FIGURE_PARALLEL_ALGORITHMS
    return tuple(ALGORITHMS)


def figure_machine_note() -> str:
    """One report-header line recording the gate decision and the CPU count."""
    cpus = os.cpu_count() or 1
    labels = ", ".join(FIGURE_PARALLEL_ALGORITHMS)
    if cpus >= FIGURE_PARALLEL_MIN_CPUS:
        verdict = f"included ({labels})"
    else:
        verdict = (f"excluded ({labels}; needs >= "
                   f"{FIGURE_PARALLEL_MIN_CPUS} cores)")
    return f"host CPUs: {cpus}; parallel engine algorithms {verdict}"


def engine_backend_of(algorithm: str) -> Optional[str]:
    """Backend spec of an ``Engine[<backend>]`` label (``None`` otherwise).

    A ``/<kernel-spec>`` suffix on the backend name is translated into the
    registry's ``kernel=`` keyword: ``Engine[sharded/numba]`` resolves to
    ``"sharded(kernel=numba)"`` and ``Engine[sharded(4)/numba]`` to
    ``"sharded(4, kernel=numba)"``.
    """
    if not (algorithm.startswith(ENGINE_ALGORITHM_PREFIX)
            and algorithm.endswith("]")):
        return None
    spec = algorithm[len(ENGINE_ALGORITHM_PREFIX):-1]
    if "/" not in spec:
        return spec
    backend, kernel = spec.split("/", 1)
    if backend.endswith(")"):
        return f"{backend[:-1]}, kernel={kernel})"
    return f"{backend}(kernel={kernel})"


class Measurement(tuple):
    """``(mean_time_s, std_time_s, num_pairs)`` plus schedule counters.

    A plain 3-tuple to every existing caller (unpacking and indexing keep
    working), with the executed backend's
    :attr:`~repro.core.kernels.KernelStats.schedule_counts` riding along so
    ``Engine[...]`` measurements can surface steal/resplit/hedge counts and
    the achieved-vs-predicted cost ratio in figure reports.
    """

    schedule: Dict[str, int]

    def __new__(cls, mean: float, std: float, pairs: int,
                schedule: Optional[Dict[str, int]] = None) -> "Measurement":
        self = super().__new__(cls, (float(mean), float(std), int(pairs)))
        self.schedule = dict(schedule or {})
        return self


@dataclass
class TimingRecord:
    """One measured point of a response-time figure.

    ``extra`` carries per-measurement scheduling observability for
    ``Engine[...]`` algorithms (steals, resplits, hedges, cost_ratio_pct —
    see :class:`repro.parallel.scheduler.ScheduleReport`); empty for the
    paper-baseline algorithms, which have no scheduler.
    """

    dataset: str
    eps: float
    algorithm: str
    time_s: float
    time_std: float = 0.0
    num_pairs: int = 0
    n_points: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    def key(self) -> Tuple[str, float]:
        """(dataset, eps) key used to align series across algorithms."""
        return (self.dataset, self.eps)


@dataclass
class ExperimentResult:
    """A bag of timing records with alignment helpers."""

    records: List[TimingRecord] = field(default_factory=list)

    def add(self, record: TimingRecord) -> None:
        """Append a record."""
        self.records.append(record)

    def extend(self, records: Iterable[TimingRecord]) -> None:
        """Append many records."""
        self.records.extend(records)

    def algorithms(self) -> List[str]:
        """Distinct algorithm labels present, in first-seen order."""
        seen: List[str] = []
        for rec in self.records:
            if rec.algorithm not in seen:
                seen.append(rec.algorithm)
        return seen

    def datasets(self) -> List[str]:
        """Distinct dataset names present, in first-seen order."""
        seen: List[str] = []
        for rec in self.records:
            if rec.dataset not in seen:
                seen.append(rec.dataset)
        return seen

    def time_map(self, algorithm: str) -> Dict[Tuple[str, float], float]:
        """Map (dataset, eps) -> time for one algorithm."""
        return {rec.key(): rec.time_s for rec in self.records
                if rec.algorithm == algorithm}

    def series(self, dataset: str, algorithm: str) -> Tuple[List[float], List[float]]:
        """(eps values, times) series of one dataset/algorithm combination."""
        recs = [rec for rec in self.records
                if rec.dataset == dataset and rec.algorithm == algorithm]
        recs.sort(key=lambda r: r.eps)
        return [r.eps for r in recs], [r.time_s for r in recs]

    def to_rows(self) -> List[Tuple[str, float, str, float, int]]:
        """Rows for :func:`repro.experiments.report.format_table`."""
        return [(r.dataset, r.eps, r.algorithm, r.time_s, r.num_pairs)
                for r in self.records]


# --------------------------------------------------------------------------
# single-algorithm timing
# --------------------------------------------------------------------------
def run_algorithm(algorithm: str, points: np.ndarray, eps: float,
                  trials: int = 1, n_threads: Optional[int] = None,
                  rtree_max_entries: int = 16) -> Tuple[float, float, int]:
    """Time one algorithm on one (dataset, ε) configuration.

    Returns ``(mean_time_s, std_time_s, num_pairs)``.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    times: List[float] = []
    num_pairs = 0

    if algorithm == "R-Tree":
        tree = build_rtree(points, max_entries=rtree_max_entries)
        for _ in range(trials):
            with Timer() as t:
                out = rtree_selfjoin(points, eps, tree=tree)
            times.append(t.elapsed)
            num_pairs = out.result.num_pairs
    elif algorithm == "SuperEGO":
        joiner = SuperEGO(n_threads=n_threads)
        for _ in range(trials):
            with Timer() as t:
                out = joiner.join(points, eps)
            times.append(t.elapsed)
            num_pairs = out.result.num_pairs
    elif algorithm in ("GPU", "GPU: unicomp"):
        config = SelfJoinConfig(unicomp=(algorithm == "GPU: unicomp"))
        joiner = GPUSelfJoin(config)
        for _ in range(trials):
            with Timer() as t:
                result = joiner.join(points, eps)
            times.append(t.elapsed)
            num_pairs = result.num_pairs
    elif algorithm == "GPU: Brute Force":
        for _ in range(trials):
            with Timer() as t:
                out = bruteforce_count(points, eps)
            times.append(t.elapsed)
            num_pairs = out.num_pairs
    elif engine_backend_of(algorithm) is not None:
        # Single-ε case of the session-held sweep below: one session per
        # (dataset, backend), repeated trials amortizing the one-time costs
        # exactly like the paper's repeated kernel launches.
        return run_algorithm_sweep(algorithm, points, [eps], trials=trials,
                                   n_threads=n_threads,
                                   rtree_max_entries=rtree_max_entries)[0]
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}; known: "
                         f"{ALGORITHMS + ENGINE_ALGORITHMS}")

    mean, std = mean_and_std(times)
    return mean, std, num_pairs


def run_algorithm_sweep(algorithm: str, points: np.ndarray,
                        eps_values: Sequence[float], trials: int = 1,
                        n_threads: Optional[int] = None,
                        rtree_max_entries: int = 16,
                        ) -> List[Tuple[float, float, int]]:
    """Time one algorithm across a whole ε sweep on one dataset.

    For ``Engine[<backend>]`` labels the entire sweep runs inside **one**
    :class:`~repro.engine.session.EngineSession` per (dataset, backend), so
    the one-time costs the session amortizes — pool creation, shared-memory
    or store attachment, per-ε index construction across repeated trials —
    are paid once per sweep instead of once per (ε, trial) measurement,
    mirroring how the paper's repeated kernel launches share one resident
    dataset.  Other algorithms delegate to :func:`run_algorithm` per ε.

    Returns one ``(mean_time_s, std_time_s, num_pairs)`` triple per ε.
    """
    backend = engine_backend_of(algorithm)
    if backend is None:
        return [run_algorithm(algorithm, points, float(eps), trials=trials,
                              n_threads=n_threads,
                              rtree_max_entries=rtree_max_entries)
                for eps in eps_values]
    from repro.engine import EngineSession

    measurements: List[Tuple[float, float, int]] = []
    with EngineSession(points, backend=backend) as session:
        unicomp = session.backend.supports_unicomp
        for eps in eps_values:
            times: List[float] = []
            num_pairs = 0
            schedule: Dict[str, int] = {}
            for _ in range(max(1, trials)):
                with Timer() as t:
                    result = session.self_join(float(eps), unicomp=unicomp)
                    num_pairs = result.num_pairs
                times.append(t.elapsed)
                schedule = dict(result.stats.schedule_counts)
            mean, std = mean_and_std(times)
            measurements.append(Measurement(mean, std, num_pairs,
                                            schedule=schedule))
    return measurements


# --------------------------------------------------------------------------
# response-time experiments (Figures 4, 5, 6)
# --------------------------------------------------------------------------
def run_response_time_experiment(dataset_names: Sequence[str],
                                 algorithms: Sequence[str] = ALGORITHMS,
                                 n_points: Optional[int] = None,
                                 eps_values: Optional[Dict[str, Sequence[float]]] = None,
                                 trials: int = 1, seed: int = 0,
                                 n_threads: Optional[int] = None,
                                 ) -> ExperimentResult:
    """Measure response time vs ε for several datasets and algorithms.

    Parameters
    ----------
    dataset_names:
        Names from :data:`repro.data.datasets.DATASETS`.
    algorithms:
        Algorithm labels (subset of :data:`ALGORITHMS`).
    n_points:
        Scaled dataset size; each dataset's registry default when omitted.
    eps_values:
        Optional per-dataset ε overrides; the registry's density-rescaled ε
        sweep when omitted.
    trials:
        Timed repetitions per measurement (paper: 3).
    seed:
        Dataset generation seed.
    n_threads:
        Thread count for SUPEREGO.

    Returns
    -------
    ExperimentResult
    """
    result = ExperimentResult()
    for name in dataset_names:
        spec: DatasetSpec = DATASETS[name]
        points = spec.generate(n_points=n_points, seed=seed)
        eps_list = list(eps_values[name]) if eps_values and name in eps_values \
            else spec.scaled_eps(n_points)
        for algorithm in algorithms:
            sweep = eps_list[:1] if algorithm in EPS_INDEPENDENT else eps_list
            # One session per (dataset, algorithm) across the whole sweep:
            # Engine[...] labels amortize pool/index start-up over every
            # (ε, trial) point instead of paying it per measurement.
            measurements = run_algorithm_sweep(
                algorithm, points, [float(e) for e in sweep], trials=trials,
                n_threads=n_threads)
            for eps, measured in zip(sweep, measurements):
                mean, std, pairs = measured
                extra = {k: float(v) for k, v in
                         getattr(measured, "schedule", {}).items()}
                result.add(TimingRecord(dataset=name, eps=float(eps),
                                        algorithm=algorithm, time_s=mean,
                                        time_std=std, num_pairs=pairs,
                                        n_points=points.shape[0],
                                        extra=extra))
    return result
