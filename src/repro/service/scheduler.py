"""Admission scheduling and request fusion for the query service.

The paper sizes GPU batches with sampled work estimates (per-cell self-join
costs, per-probe-row costs); the service reuses exactly that currency as an
*admission scheduler*: a burst of single-point range (or kNN) queries
against the same ``(dataset, ε)`` — the signature workload of "many users,
one resident catalog" — is fused into **one** bipartite batch per scheduler
tick.  The fused probe rows are cost-weighted with
:func:`repro.core.batching.estimate_probe_row_costs` and partitioned into
cost-balanced sub-batches with :func:`repro.core.batching.split_by_cost`
(one query probing a dense region no longer rides with — and stalls — a
dozen probing empty space), executed through the shared operator seam, and
the merged CSR result is de-multiplexed back into per-client slices.  The
per-row answers are bit-identical to running each query alone: the probe
operator's pair set for a row depends only on that row's point.

Everything here is synchronous and socket-free so the fusion and deadline
logic can be unit-tested in isolation; :mod:`repro.service.server` provides
the asyncio plumbing (admission queue, tick loop, response streaming)
around it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.knn import knn_search
from repro.core.batching import estimate_probe_row_costs, split_by_cost
from repro.core.result import PairFragments
from repro.engine.session import EngineSession
from repro.service import protocol
from repro.service.catalog import SessionCatalog
from repro.utils.cancellation import (
    CancellationToken,
    OperationCancelled,
    cancel_scope,
)

#: Result pairs per streamed response chunk (bounded frames, ~1 MiB each).
DEFAULT_CHUNK_PAIRS = 65536

#: Cost-balanced sub-batches a fused probe batch is split into per tick.
DEFAULT_FUSION_SUBBATCHES = 4

#: Ops whose single-point instances the scheduler may fuse.
FUSABLE_OPS = frozenset({"range_query", "knn"})

#: Ops admitted through the scheduler queue (vs. control-plane ops the
#: connection handles inline).
QUERY_OPS = frozenset({"range_query", "knn", "self_join", "bipartite_join",
                       "_sleep"})

#: Ops whose results stream back as chunked CSR pair frames.
STREAMING_OPS = frozenset({"range_query", "self_join", "bipartite_join"})


@dataclass
class Outcome:
    """Terminal result of one request, ready to serialize.

    ``status`` is one of the protocol statuses; ``end`` holds JSON-safe
    fields for the terminal frame; ``arrays`` carries a single-frame array
    response (kNN) — streamed CSR chunks travel through the request's
    stream instead.
    """

    status: str
    end: Dict[str, Any] = field(default_factory=dict)
    arrays: Optional[List[Tuple[str, np.ndarray]]] = None
    message: str = ""


@dataclass
class PendingRequest:
    """One admitted query waiting for (or undergoing) execution."""

    op: str
    dataset: str
    eps: Optional[float] = None
    k: Optional[int] = None
    points: Optional[np.ndarray] = None
    unicomp: bool = True
    include_self: bool = True
    fuse: bool = True
    seconds: float = 0.0  # _sleep only
    token: CancellationToken = field(default_factory=CancellationToken)
    #: Duck-typed chunk stream (``post``/``abort`` attrs) for streaming ops.
    stream: Any = None
    #: Server-installed callback resolving this request with an Outcome.
    resolve: Callable[["PendingRequest", Outcome], None] = lambda req, out: None
    received: float = field(default_factory=time.monotonic)

    @property
    def fusable(self) -> bool:
        """Single-point instance of a fusable op (and fusion not opted out)."""
        return (self.fuse and self.op in FUSABLE_OPS
                and self.points is not None and self.points.shape[0] == 1)

    def fusion_key(self) -> Optional[tuple]:
        """Group key for fusion — same (op, dataset, parameter) fuse together."""
        if not self.fusable:
            return None
        if self.op == "range_query":
            return ("range_query", self.dataset, float(self.eps))
        return ("knn", self.dataset, int(self.k))


@dataclass
class WorkUnit:
    """One schedulable execution: a single request or a fused batch."""

    kind: str  # "single" | "fused_range" | "fused_knn"
    requests: List[PendingRequest]

    @property
    def fused(self) -> bool:
        return self.kind != "single"


def plan_tick(requests: Sequence[PendingRequest]) -> List[WorkUnit]:
    """Group one tick's admitted requests into work units.

    Fusable point queries sharing a fusion key become one fused unit (two
    or more members); everything else executes as a single unit.  Member
    order — and therefore the fused probe-row order — is admission order,
    so de-multiplexing is a row-range slice.
    """
    units: List[WorkUnit] = []
    groups: Dict[tuple, WorkUnit] = {}
    for req in requests:
        key = req.fusion_key()
        if key is None:
            units.append(WorkUnit(kind="single", requests=[req]))
            continue
        unit = groups.get(key)
        if unit is None:
            kind = "fused_range" if key[0] == "range_query" else "fused_knn"
            unit = WorkUnit(kind=kind, requests=[])
            groups[key] = unit
            units.append(unit)
        unit.requests.append(req)
    for unit in units:
        if unit.fused and len(unit.requests) == 1:
            unit.kind = "single"
    return units


# --------------------------------------------------------------------------
# streamed-result plumbing
# --------------------------------------------------------------------------
class ChunkForwardingSink(PairFragments):
    """A :class:`PairFragments` that forwards emissions instead of retaining.

    Drops straight into the per-shard sink path (``run_selfjoin_streamed``
    emits into it as each shard completes), coalescing fragments into
    bounded chunks handed to ``post(keys, values)`` — the server never holds
    more than one chunk of the result, which is what makes service-side
    self-joins as out-of-core as the engine-side ones.
    """

    def __init__(self, num_rows: int, post: Callable[[np.ndarray, np.ndarray], None],
                 chunk_pairs: int = DEFAULT_CHUNK_PAIRS,
                 drop_self_pairs: bool = False) -> None:
        super().__init__(num_rows)
        self._post = post
        self._chunk_pairs = int(chunk_pairs)
        self._drop_self = bool(drop_self_pairs)
        self._buf_keys: List[np.ndarray] = []
        self._buf_values: List[np.ndarray] = []
        self._buffered = 0

    def emit(self, keys: np.ndarray, values: np.ndarray) -> None:
        if keys.shape[0] != values.shape[0]:
            raise ValueError("keys and values must have the same length")
        if self._drop_self and keys.shape[0]:
            keep = keys != values
            keys, values = keys[keep], values[keep]
        if keys.shape[0] == 0:
            return
        self._buf_keys.append(keys)
        self._buf_values.append(values)
        self._buffered += int(keys.shape[0])
        self._num_pairs += int(keys.shape[0])
        if self._buffered >= self._chunk_pairs:
            self.flush()

    def extend(self, other: PairFragments) -> None:
        if other.num_rows != self.num_rows:
            raise ValueError("merged sinks must cover the same row space")
        for keys, values in other.parts():
            self.emit(keys, values)

    def flush(self) -> None:
        """Post the buffered fragments as one chunk (call once when done)."""
        if not self._buffered:
            return
        keys = np.concatenate(self._buf_keys).astype(np.int64, copy=False)
        values = np.concatenate(self._buf_values).astype(np.int64, copy=False)
        self._buf_keys.clear()
        self._buf_values.clear()
        self._buffered = 0
        self._post(keys, values)

    def concatenated(self):  # pragma: no cover - guard against misuse
        raise RuntimeError("a forwarding sink retains nothing; consume the "
                           "posted chunks instead")


def _post_pairs_chunked(post: Callable[[np.ndarray, np.ndarray], None],
                        keys: np.ndarray, values: np.ndarray,
                        chunk_pairs: int) -> None:
    """Ship an in-memory pair array as bounded chunk frames."""
    for lo in range(0, keys.shape[0], chunk_pairs):
        hi = lo + chunk_pairs
        post(keys[lo:hi], values[lo:hi])


# --------------------------------------------------------------------------
# execution
# --------------------------------------------------------------------------
def execute_fused_range(session: EngineSession, reqs: Sequence[PendingRequest],
                        eps: float, *,
                        n_subbatches: int = DEFAULT_FUSION_SUBBATCHES,
                        ) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Run fused single-point range queries as one cost-balanced batch.

    Returns one ``(keys, values)`` pair-array slice per request (keys are
    local row ids, always 0 for single-point members).  Row ``i`` of the
    stacked probe array is request ``i``'s point, so de-multiplexing is a
    bincount-free boolean slice on the emitted keys.
    """
    stacked = np.concatenate([r.points for r in reqs]).astype(np.float64,
                                                              copy=False)
    index = session.index_for(eps)
    # The admission scheduler's currency: the same sampled per-probe-row
    # work model that sizes the paper's GPU batches balances the fused
    # batch across sub-batches here.
    costs = estimate_probe_row_costs(stacked, index)
    sink = PairFragments(stacked.shape[0])
    for rows in split_by_cost(costs, min(n_subbatches, stacked.shape[0])):
        session.backend.run_probe(stacked, index, eps, sink, rows=rows)
    keys, values = sink.concatenated()
    order = np.argsort(keys, kind="stable")
    keys, values = keys[order], values[order]
    starts = np.searchsorted(keys, np.arange(len(reqs) + 1, dtype=np.int64))
    out: List[Tuple[np.ndarray, np.ndarray]] = []
    for i in range(len(reqs)):
        sl = slice(starts[i], starts[i + 1])
        out.append((keys[sl] - i, values[sl]))
    return out


def execute_fused_knn(session: EngineSession, reqs: Sequence[PendingRequest],
                      k: int) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Run fused single-point kNN queries as one candidate-probe batch.

    Exactness makes fusion invisible: the candidate rows provably contain
    each query's true k nearest and the top-k selection breaks ties
    deterministically by id, so each slice is bit-identical to the query
    run alone.
    """
    stacked = np.concatenate([r.points for r in reqs]).astype(np.float64,
                                                              copy=False)
    result = knn_search(None, k, queries=stacked, session=session)
    return [(result.indices[i:i + 1], result.distances[i:i + 1])
            for i in range(len(reqs))]


def _run_streaming_single(req: PendingRequest, session: EngineSession,
                          chunk_pairs: int) -> Outcome:
    """Execute one CSR-result op, streaming chunks through ``req.stream``."""
    post = req.stream.post
    if req.op == "self_join":
        num_rows = session.source.n_points
        if session.streams_self_joins:
            # Straight off the per-shard sink path: each disk-streamed
            # shard's pairs leave the server as soon as the shard finishes.
            sink = ChunkForwardingSink(num_rows, post, chunk_pairs,
                                       drop_self_pairs=not req.include_self)
            session.backend.run_selfjoin_streamed(
                session.source, req.eps, sink, unicomp=req.unicomp)
            sink.flush()
            total = sink.num_pairs
        else:
            result = session.self_join(req.eps, unicomp=req.unicomp,
                                       include_self=req.include_self)
            keys, values = result.pairs()
            _post_pairs_chunked(post, keys, values, chunk_pairs)
            total = int(keys.shape[0])
    elif req.op == "range_query":
        result = session.range_query(req.points, req.eps)
        keys, values = result.pairs()
        _post_pairs_chunked(post, keys, values, chunk_pairs)
        num_rows, total = req.points.shape[0], int(keys.shape[0])
    elif req.op == "bipartite_join":
        result = session.bipartite_join(req.points, req.eps)
        keys, values = result.pairs()
        _post_pairs_chunked(post, keys, values, chunk_pairs)
        num_rows, total = req.points.shape[0], int(keys.shape[0])
    else:  # pragma: no cover - guarded by QUERY_OPS
        raise ValueError(f"not a streaming op: {req.op!r}")
    return Outcome(protocol.STATUS_OK,
                   end={"num_rows": int(num_rows), "total_pairs": int(total)})


def _run_single(req: PendingRequest, catalog: SessionCatalog,
                chunk_pairs: int) -> Outcome:
    if req.op == "_sleep":
        # Deterministic worker-occupancy knob for backpressure tests and the
        # load generator; sleeps in slices so deadlines still bite.
        deadline = time.monotonic() + req.seconds
        while time.monotonic() < deadline:
            req.token.check()
            time.sleep(min(0.01, max(0.0, deadline - time.monotonic())))
        return Outcome(protocol.STATUS_OK, end={"slept": req.seconds})
    session = catalog.get(req.dataset)
    if req.op == "knn":
        result = knn_search(None, req.k, queries=req.points, session=session)
        return Outcome(protocol.STATUS_OK,
                       end={"num_rows": int(req.points.shape[0]),
                            "k": int(req.k)},
                       arrays=[("indices", result.indices),
                               ("distances", result.distances)])
    return _run_streaming_single(req, session, chunk_pairs)


def _fused_end(req: PendingRequest, n_pairs: int, batch_size: int) -> dict:
    return {"num_rows": int(req.points.shape[0]), "total_pairs": int(n_pairs),
            "fused": True, "fused_batch_size": int(batch_size)}


def run_work_unit(unit: WorkUnit, catalog: SessionCatalog,
                  chunk_pairs: int = DEFAULT_CHUNK_PAIRS) -> None:
    """Execute one work unit on the calling (worker) thread.

    Resolves every member request through its ``resolve`` callback —
    expired members with a structured timeout before any work, the rest
    with their result, a timeout (cooperative cancellation actually stopped
    the shard loops), or an error.  Never raises: a worker thread must
    outlive any single bad request.
    """
    live: List[PendingRequest] = []
    for req in unit.requests:
        try:
            req.token.check()
        except OperationCancelled as exc:
            req.resolve(req, Outcome(protocol.STATUS_TIMEOUT,
                                     message=f"expired before execution "
                                             f"({exc.reason})"))
        else:
            live.append(req)
    if not live:
        return
    # One scope covers a fused batch: it trips only when every member is
    # past its deadline (the latest member deadline wins), so an early
    # deadline never cancels a co-fused request that still has time.
    deadlines = [r.token.deadline for r in live]
    scope = CancellationToken(
        deadline=None if any(d is None for d in deadlines) else max(deadlines))
    if unit.kind == "single":
        scope = live[0].token
    try:
        with cancel_scope(scope):
            if unit.kind == "single":
                outcome = _run_single(live[0], catalog, chunk_pairs)
                live[0].resolve(live[0], outcome)
            elif unit.kind == "fused_range":
                session = catalog.get(live[0].dataset)
                slices = execute_fused_range(session, live,
                                             float(live[0].eps))
                for req, (keys, values) in zip(live, slices):
                    _post_pairs_chunked(req.stream.post, keys, values,
                                        chunk_pairs)
                    req.resolve(req, Outcome(
                        protocol.STATUS_OK,
                        end=_fused_end(req, keys.shape[0], len(live))))
            elif unit.kind == "fused_knn":
                session = catalog.get(live[0].dataset)
                parts = execute_fused_knn(session, live, int(live[0].k))
                for req, (indices, distances) in zip(live, parts):
                    req.resolve(req, Outcome(
                        protocol.STATUS_OK,
                        end={"num_rows": 1, "k": int(live[0].k),
                             "fused": True, "fused_batch_size": len(live)},
                        arrays=[("indices", indices),
                                ("distances", distances)]))
            else:  # pragma: no cover
                raise ValueError(f"unknown work unit kind {unit.kind!r}")
    except OperationCancelled as exc:
        status = protocol.STATUS_TIMEOUT if exc.is_deadline \
            else protocol.STATUS_ERROR
        for req in live:
            req.resolve(req, Outcome(status,
                                     message=f"cancelled mid-execution "
                                             f"({exc.reason})"))
    except Exception as exc:  # noqa: BLE001 - converted to a wire error
        for req in live:
            req.resolve(req, Outcome(protocol.STATUS_ERROR,
                                     message=f"{type(exc).__name__}: {exc}"))
