"""Synchronous client for the query service.

:class:`ServiceClient` speaks the frame protocol of
:mod:`repro.service.protocol` over one blocking TCP connection and turns
wire responses back into engine-native objects — streamed CSR chunk frames
are collected and rebuilt into a :class:`~repro.core.result.NeighborTable`
(whose construction sorts, so chunk arrival order is irrelevant), kNN
responses into ``(indices, distances)`` arrays.  Structured failure
statuses map onto exceptions: :class:`ServiceRejected` (admission queue
full — back off and retry) and :class:`ServiceTimeout` (deadline expired
server-side; the engine work was cooperatively cancelled).

One client drives one connection and is not thread-safe; concurrency tests
and the load generator open one client per worker thread, which also gives
the server genuinely concurrent connections to serve.
"""

from __future__ import annotations

import socket
from typing import List, Optional, Tuple

import numpy as np

from repro.core.result import NeighborTable
from repro.service import protocol


class ServiceError(Exception):
    """A structured ``error`` response (or a protocol violation)."""


class ServiceRejected(ServiceError):
    """The admission queue was full; the request was never admitted."""


class ServiceTimeout(ServiceError):
    """The request's deadline expired server-side (work was cancelled)."""


def _raise_for_status(status: str, header: dict) -> None:
    message = header.get("message", "")
    if status == protocol.STATUS_REJECTED:
        raise ServiceRejected(message or "admission queue full")
    if status == protocol.STATUS_TIMEOUT:
        raise ServiceTimeout(message or "deadline expired")
    raise ServiceError(message or f"service returned status {status!r}")


class ServiceClient:
    """Blocking client over one service connection (see module docstring)."""

    def __init__(self, host: str, port: int, *, timeout: float = 30.0,
                 max_payload: int = protocol.DEFAULT_MAX_PAYLOAD_BYTES) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._max_payload = max_payload

    # ----------------------------------------------------------------- plumbing
    def _send(self, header: dict, payload: bytes = b"") -> None:
        self._sock.sendall(protocol.encode_frame(header, payload))

    def _recv(self) -> Tuple[dict, bytes]:
        frame = protocol.read_frame_sock(self._sock, self._max_payload)
        if frame is None:
            raise ServiceError("server closed the connection mid-request")
        return frame

    def _request(self, header: dict, payload: bytes = b"") -> Tuple[dict, bytes]:
        """One request → one terminal response frame (non-streaming ops)."""
        self._send(header, payload)
        resp, body = self._recv()
        status = resp.get("status")
        if status != protocol.STATUS_OK:
            _raise_for_status(status, resp)
        if resp.get("streaming"):
            raise ServiceError("unexpected streaming response; use the "
                               "stream-collecting path")
        return resp, body

    def _request_streamed(self, header: dict, payload: bytes = b"",
                          ) -> Tuple[dict, List[np.ndarray], List[np.ndarray]]:
        """One request → opener + chunk frames + terminal ``end`` frame.

        Returns the end frame's header plus the collected chunk arrays.
        The opener may itself be terminal (``rejected`` / ``error``).
        """
        self._send(header, payload)
        opener, _ = self._recv()
        status = opener.get("status")
        if status != protocol.STATUS_OK:
            _raise_for_status(status, opener)
        if not opener.get("streaming"):
            raise ServiceError("expected a streaming response")
        keys_parts: List[np.ndarray] = []
        values_parts: List[np.ndarray] = []
        while True:
            resp, body = self._recv()
            status = resp.get("status")
            if status == protocol.STATUS_CHUNK:
                arrays = protocol.unpack_arrays(resp.get("arrays", ()), body)
                keys_parts.append(arrays["keys"])
                values_parts.append(arrays["values"])
                continue
            if status == protocol.STATUS_END:
                final = resp.get("final")
                if final != protocol.STATUS_OK:
                    _raise_for_status(final, resp)
                return resp, keys_parts, values_parts
            _raise_for_status(status, resp)

    @staticmethod
    def _table(end: dict, keys_parts: List[np.ndarray],
               values_parts: List[np.ndarray]) -> NeighborTable:
        keys = np.concatenate(keys_parts) if keys_parts \
            else np.empty(0, dtype=np.int64)
        values = np.concatenate(values_parts) if values_parts \
            else np.empty(0, dtype=np.int64)
        return NeighborTable.from_pairs(keys, values, int(end["num_rows"]))

    @staticmethod
    def _query_header(op: str, dataset: str, *, eps: Optional[float] = None,
                      k: Optional[int] = None,
                      timeout_ms: Optional[float] = None,
                      fuse: bool = True, **extra) -> dict:
        header = {"op": op, "dataset": dataset, "fuse": fuse, **extra}
        if eps is not None:
            header["eps"] = float(eps)
        if k is not None:
            header["k"] = int(k)
        if timeout_ms is not None:
            header["timeout_ms"] = float(timeout_ms)
        return header

    # ------------------------------------------------------------ control plane
    def ping(self) -> bool:
        """Round-trip liveness check."""
        resp, _ = self._request({"op": "ping"})
        return bool(resp.get("pong"))

    def stats(self) -> dict:
        """The stats/health document (service counters, sessions, tiers)."""
        resp, _ = self._request({"op": "stats"})
        return resp["stats"]

    def list_datasets(self) -> List[dict]:
        """Descriptions of the datasets currently registered."""
        resp, _ = self._request({"op": "list"})
        return resp["datasets"]

    def register(self, name: str, points: Optional[np.ndarray] = None, *,
                 store_path: Optional[str] = None,
                 backend: Optional[str] = None) -> dict:
        """Register a dataset: ship ``points``, or name a server-side store.

        With ``store_path`` the dataset never crosses the wire — the server
        opens the :class:`~repro.data.store.SpatialStore` locally, and a
        streaming backend keeps self-joins over it out-of-core end to end.
        """
        header = {"op": "register", "name": name}
        payload = b""
        if backend is not None:
            header["backend"] = backend
        if store_path is not None:
            header["store_path"] = str(store_path)
        elif points is not None:
            pts = np.ascontiguousarray(points, dtype=np.float64)
            header["arrays"], payload = protocol.pack_arrays([("points", pts)])
        resp, _ = self._request(header, payload)
        return resp["dataset"]

    def evict(self, name: str) -> None:
        """Close and drop a registered dataset."""
        self._request({"op": "evict", "name": name})

    def shutdown_server(self) -> None:
        """Ask the server to stop (it still acknowledges)."""
        self._request({"op": "shutdown"})

    # ------------------------------------------------------------------ queries
    def range_query(self, dataset: str, queries: np.ndarray, eps: float, *,
                    timeout_ms: Optional[float] = None,
                    fuse: bool = True) -> NeighborTable:
        """ε-neighborhoods of ``queries`` over the named dataset (CSR)."""
        queries = np.ascontiguousarray(queries, dtype=np.float64)
        meta, payload = protocol.pack_arrays([("points", queries)])
        end, keys, values = self._request_streamed(
            self._query_header("range_query", dataset, eps=eps,
                               timeout_ms=timeout_ms, fuse=fuse, arrays=meta),
            payload)
        return self._table(end, keys, values)

    def knn(self, dataset: str, queries: np.ndarray, k: int, *,
            timeout_ms: Optional[float] = None,
            fuse: bool = True) -> Tuple[np.ndarray, np.ndarray]:
        """Exact k nearest neighbors: ``(indices, distances)`` arrays."""
        queries = np.ascontiguousarray(queries, dtype=np.float64)
        meta, payload = protocol.pack_arrays([("points", queries)])
        resp, body = self._request(
            self._query_header("knn", dataset, k=k, timeout_ms=timeout_ms,
                               fuse=fuse, arrays=meta),
            payload)
        arrays = protocol.unpack_arrays(resp.get("arrays", ()), body)
        return arrays["indices"], arrays["distances"]

    def self_join(self, dataset: str, eps: float, *, unicomp: bool = True,
                  include_self: bool = True,
                  timeout_ms: Optional[float] = None) -> NeighborTable:
        """Self-join of the named dataset within ``eps`` (CSR)."""
        end, keys, values = self._request_streamed(
            self._query_header("self_join", dataset, eps=eps,
                               timeout_ms=timeout_ms, unicomp=unicomp,
                               include_self=include_self))
        return self._table(end, keys, values)

    def bipartite_join(self, dataset: str, left: np.ndarray, eps: float, *,
                       timeout_ms: Optional[float] = None) -> NeighborTable:
        """Join an external ``left`` set against the named dataset (CSR)."""
        left = np.ascontiguousarray(left, dtype=np.float64)
        meta, payload = protocol.pack_arrays([("points", left)])
        end, keys, values = self._request_streamed(
            self._query_header("bipartite_join", dataset, eps=eps,
                               timeout_ms=timeout_ms, arrays=meta),
            payload)
        return self._table(end, keys, values)

    def sleep(self, seconds: float, *,
              timeout_ms: Optional[float] = None) -> dict:
        """Occupy one worker for ``seconds`` (tests / load generation)."""
        resp, _ = self._request(
            self._query_header("_sleep", "", timeout_ms=timeout_ms,
                               seconds=float(seconds)))
        return resp

    # ---------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
