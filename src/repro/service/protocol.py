"""Wire protocol of the query service: length-prefixed JSON + binary frames.

One frame is::

    magic   4 bytes   b"RQS1"
    hlen    uint32    header length in bytes (big-endian)
    plen    uint64    payload length in bytes (big-endian)
    header  hlen      UTF-8 JSON object
    payload plen      raw bytes (numpy array data, see the array codec)

The header carries everything small and structured (op name, dataset name,
ε, deadlines, statuses, array metadata); the payload carries the bulk array
bytes *uninterpreted*, so a query's points and a result's id arrays cross
the socket without any per-element encoding.  Arrays are described in the
header (``pack_arrays`` → ``{"arrays": [{name, dtype, shape}, ...]}``) and
concatenated into the payload in metadata order.

Large results do not travel as one frame: the server emits a ``status:
"chunk"`` frame per bounded slice of result pairs straight off the per-shard
sink path, terminated by a ``status: "end"`` frame carrying the final status
and totals (see :mod:`repro.service.server`).  The frame reader enforces
hard size bounds — a truncated stream raises :class:`ProtocolError` instead
of blocking forever, and an oversized declared length is rejected *before*
any allocation, so a malformed client cannot make the server buffer
unboundedly.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

MAGIC = b"RQS1"
_PREFIX = struct.Struct(">4sIQ")
PREFIX_BYTES = _PREFIX.size

#: Hard bound on the JSON header (it only carries metadata).
MAX_HEADER_BYTES = 1 << 20
#: Default bound on one frame's binary payload (points / result chunks).
DEFAULT_MAX_PAYLOAD_BYTES = 1 << 28

#: Response statuses (terminal unless noted).
STATUS_OK = "ok"            # single-frame success, or stream opener
STATUS_CHUNK = "chunk"      # non-terminal: one slice of a streamed result
STATUS_END = "end"          # stream terminator; carries the final status
STATUS_REJECTED = "rejected"
STATUS_TIMEOUT = "timeout"
STATUS_ERROR = "error"


class ProtocolError(ValueError):
    """A malformed, truncated or oversized frame."""


# --------------------------------------------------------------------------
# framing
# --------------------------------------------------------------------------
def encode_frame(header: dict, payload: bytes = b"") -> bytes:
    """Serialize one frame (header JSON + raw payload)."""
    head = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError(f"header of {len(head)} bytes exceeds the "
                            f"{MAX_HEADER_BYTES}-byte bound")
    return _PREFIX.pack(MAGIC, len(head), len(payload)) + head + payload


def _parse_prefix(prefix: bytes,
                  max_payload: int) -> Tuple[int, int]:
    magic, hlen, plen = _PREFIX.unpack(prefix)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if hlen > MAX_HEADER_BYTES:
        raise ProtocolError(f"declared header length {hlen} exceeds the "
                            f"{MAX_HEADER_BYTES}-byte bound")
    if plen > max_payload:
        raise ProtocolError(f"declared payload length {plen} exceeds the "
                            f"{max_payload}-byte bound")
    return hlen, plen


def _decode_header(head: bytes) -> dict:
    try:
        header = json.loads(head.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError("frame header must be a JSON object")
    return header


def read_frame(read_exact: Callable[[int], bytes],
               max_payload: int = DEFAULT_MAX_PAYLOAD_BYTES,
               ) -> Optional[Tuple[dict, bytes]]:
    """Read one frame through a ``read_exact(n) -> bytes`` callable.

    ``read_exact`` may return fewer bytes only at end of stream.  A clean
    EOF *between* frames returns ``None``; EOF inside a frame raises
    :class:`ProtocolError` ("truncated"), as do bad magic and oversized
    declared lengths (checked before any payload allocation).
    """
    prefix = read_exact(PREFIX_BYTES)
    if len(prefix) == 0:
        return None
    if len(prefix) < PREFIX_BYTES:
        raise ProtocolError(f"truncated frame prefix ({len(prefix)} of "
                            f"{PREFIX_BYTES} bytes)")
    hlen, plen = _parse_prefix(prefix, max_payload)
    body = read_exact(hlen + plen)
    if len(body) < hlen + plen:
        raise ProtocolError(f"truncated frame body ({len(body)} of "
                            f"{hlen + plen} bytes)")
    return _decode_header(body[:hlen]), body[hlen:]


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Receive exactly ``n`` bytes from a socket (short only at EOF)."""
    parts: List[bytes] = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            break
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


def read_frame_sock(sock: socket.socket,
                    max_payload: int = DEFAULT_MAX_PAYLOAD_BYTES,
                    ) -> Optional[Tuple[dict, bytes]]:
    """Blocking frame read from a connected socket (see :func:`read_frame`)."""
    return read_frame(lambda n: _recv_exact(sock, n), max_payload)


async def read_frame_async(reader: asyncio.StreamReader,
                           max_payload: int = DEFAULT_MAX_PAYLOAD_BYTES,
                           ) -> Optional[Tuple[dict, bytes]]:
    """Async frame read from an :class:`asyncio.StreamReader`."""
    try:
        prefix = await reader.readexactly(PREFIX_BYTES)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(f"truncated frame prefix ({len(exc.partial)} of "
                            f"{PREFIX_BYTES} bytes)") from exc
    hlen, plen = _parse_prefix(prefix, max_payload)
    try:
        body = await reader.readexactly(hlen + plen)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(f"truncated frame body ({len(exc.partial)} of "
                            f"{hlen + plen} bytes)") from exc
    return _decode_header(body[:hlen]), body[hlen:]


# --------------------------------------------------------------------------
# array codec
# --------------------------------------------------------------------------
#: dtypes allowed on the wire — the engine's data and id types.  A codec
#: allow-list (rather than trusting arbitrary dtype strings) keeps a
#: malicious header from instantiating object dtypes.
WIRE_DTYPES = ("float64", "float32", "int64", "int32", "uint64", "bool")


def pack_arrays(arrays: Sequence[Tuple[str, np.ndarray]],
                ) -> Tuple[List[dict], bytes]:
    """Describe named arrays as header metadata + one concatenated payload."""
    meta: List[dict] = []
    parts: List[bytes] = []
    for name, arr in arrays:
        arr = np.ascontiguousarray(arr)
        if arr.dtype.name not in WIRE_DTYPES:
            raise ProtocolError(f"dtype {arr.dtype.name!r} of array "
                                f"{name!r} is not wire-encodable")
        buf = arr.tobytes()
        meta.append({"name": name, "dtype": arr.dtype.name,
                     "shape": list(arr.shape), "nbytes": len(buf)})
        parts.append(buf)
    return meta, b"".join(parts)


def unpack_arrays(meta: Sequence[dict], payload: bytes) -> Dict[str, np.ndarray]:
    """Rebuild the named arrays described by ``meta`` from the payload."""
    arrays: Dict[str, np.ndarray] = {}
    offset = 0
    for entry in meta:
        try:
            name = entry["name"]
            dtype = entry["dtype"]
            shape = tuple(int(s) for s in entry["shape"])
            nbytes = int(entry["nbytes"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed array metadata {entry!r}") from exc
        if dtype not in WIRE_DTYPES:
            raise ProtocolError(f"dtype {dtype!r} of array {name!r} is not "
                                "wire-decodable")
        if any(s < 0 for s in shape):
            raise ProtocolError(f"negative dimension in shape {shape} of "
                                f"array {name!r}")
        expected = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
        if nbytes != expected:
            raise ProtocolError(f"array {name!r} declares {nbytes} bytes but "
                                f"shape/dtype imply {expected}")
        if offset + nbytes > len(payload):
            raise ProtocolError(f"payload too short for array {name!r}")
        arrays[name] = np.frombuffer(
            payload, dtype=dtype, count=int(np.prod(shape, dtype=np.int64)),
            offset=offset).reshape(shape).copy()
        offset += nbytes
    if offset != len(payload):
        raise ProtocolError(f"{len(payload) - offset} unclaimed payload bytes "
                            "after the declared arrays")
    return arrays
