"""The query service: an asyncio front door over the session engine.

The paper's setting is a hybrid CPU/GPU engine kept *resident* — dataset on
the device, index built, pipeline warm — precisely so that many queries can
amortize those one-time costs.  This package is the serving half of that
story: a stdlib-only asyncio TCP server (:mod:`repro.service.server`) owns
a catalog of named :class:`~repro.engine.session.EngineSession`s
(:mod:`repro.service.catalog`), admits concurrent range / kNN / self-join /
bipartite requests over a length-prefixed JSON + binary frame protocol
(:mod:`repro.service.protocol`), and schedules them per tick
(:mod:`repro.service.scheduler`):

* bursts of single-point range/kNN queries against the same (dataset, ε)
  **fuse** into one cost-balanced bipartite batch — the paper's sampled
  work estimates, reused as an admission scheduler;
* per-request **deadlines** cancel cooperatively, actually stopping shard
  loops (:mod:`repro.utils.cancellation`), and a bounded admission queue
  rejects overload with a structured response instead of melting down;
* CSR results **stream** back in bounded chunk frames straight off the
  per-shard sink path, so the server never materializes a full pair set.

:class:`ServiceClient` (:mod:`repro.service.client`) is the synchronous
client; ``python -m repro.service`` (or the ``repro-serve`` console script)
runs a standalone server.
"""

from repro.service.catalog import DatasetNotRegistered, SessionCatalog
from repro.service.client import (
    ServiceClient,
    ServiceError,
    ServiceRejected,
    ServiceTimeout,
)
from repro.service.protocol import (
    STATUS_CHUNK,
    STATUS_END,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_TIMEOUT,
    ProtocolError,
)
from repro.service.server import QueryService, ServerThread, ServiceStats

__all__ = [
    "DatasetNotRegistered",
    "ProtocolError",
    "QueryService",
    "ServerThread",
    "ServiceClient",
    "ServiceError",
    "ServiceRejected",
    "ServiceStats",
    "ServiceTimeout",
    "SessionCatalog",
    "STATUS_CHUNK",
    "STATUS_END",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_REJECTED",
    "STATUS_TIMEOUT",
]
