"""Standalone query-service server: ``python -m repro.service`` / ``repro-serve``.

Binds the asyncio service, optionally pre-registers on-disk
:class:`~repro.data.store.SpatialStore` datasets, prints the bound address
and serves until interrupted (or a client sends ``shutdown``).
"""

from __future__ import annotations

import argparse
import asyncio
from typing import Optional, Sequence

from repro.service.server import (
    DEFAULT_MAX_PENDING,
    DEFAULT_TICK_SECONDS,
    DEFAULT_WORKERS,
    QueryService,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve the spatial query engine over TCP.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: %(default)s)")
    parser.add_argument("--port", type=int, default=9471,
                        help="bind port; 0 picks a free one (default: %(default)s)")
    parser.add_argument("--backend", default="vectorized",
                        help="default backend for registered datasets "
                             "(default: %(default)s)")
    parser.add_argument("--max-pending", type=int, default=DEFAULT_MAX_PENDING,
                        help="admission-queue bound; overload is rejected "
                             "(default: %(default)s)")
    parser.add_argument("--tick", type=float, default=DEFAULT_TICK_SECONDS,
                        metavar="SECONDS",
                        help="scheduler tick / fusion window "
                             "(default: %(default)s)")
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS,
                        help="execution threads (default: %(default)s)")
    parser.add_argument("--register", action="append", default=[],
                        metavar="NAME=STORE_PATH",
                        help="pre-register an on-disk SpatialStore under "
                             "NAME (repeatable)")
    return parser


async def _serve(args: argparse.Namespace) -> None:
    service = QueryService(args.host, args.port,
                           default_backend=args.backend,
                           max_pending=args.max_pending,
                           tick_seconds=args.tick,
                           workers=args.workers)
    await service.start()
    for spec in args.register:
        name, _, path = spec.partition("=")
        if not name or not path:
            raise SystemExit(f"--register expects NAME=STORE_PATH, got {spec!r}")
        service.catalog.register(name, store_path=path)
        print(f"registered {name!r} from {path}")
    print(f"repro-serve listening on {service.host}:{service.port}")
    await service.serve_until_stopped()


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        asyncio.run(_serve(args))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
