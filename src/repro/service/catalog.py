"""The service's catalog of named, resident :class:`EngineSession`s.

The engine can hold one dataset resident (cached per-ε indexes, attached
backend state, memmapped stores); the catalog is the service-side directory
of such residencies.  ``register`` opens a session — from an in-memory array
shipped over the wire, or from a :class:`~repro.data.store.SpatialStore`
path so the dataset never crosses the socket at all — and ``evict`` closes
it (detaching the backend, which may park a multiprocess pool for revival).

All methods are thread-safe: registrations arrive on the asyncio loop
thread while query execution resolves sessions from worker threads.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Union

import numpy as np

from repro.data.store import SpatialStore
from repro.engine.session import EngineSession


class DatasetNotRegistered(KeyError):
    """Lookup of a dataset name the catalog does not hold."""

    def __init__(self, name: str, known: List[str]) -> None:
        message = (f"no dataset {name!r} registered; known: {sorted(known)}")
        super().__init__(message)
        self.message = message

    def __str__(self) -> str:
        return self.message


class SessionCatalog:
    """Named sessions with register/evict lifecycle (see module docstring)."""

    def __init__(self, default_backend: str = "vectorized") -> None:
        self.default_backend = default_backend
        self._sessions: Dict[str, EngineSession] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------- lifecycle
    def register(self, name: str,
                 data: Optional[Union[np.ndarray, SpatialStore]] = None,
                 store_path: Optional[str] = None,
                 backend: Optional[str] = None) -> dict:
        """Open a session for ``name`` and attach its backend.

        Exactly one of ``data`` (an array shipped by the client, or an
        already-opened store) and ``store_path`` (an on-disk
        :class:`~repro.data.store.SpatialStore` the server opens locally —
        the dataset never crosses the wire) must be given.  Duplicate names
        are rejected; evict first to replace a dataset.
        """
        if (data is None) == (store_path is None):
            raise ValueError("register needs exactly one of data / store_path")
        if store_path is not None:
            data = SpatialStore.open(store_path)
        session = EngineSession(data, backend=backend or self.default_backend)
        with self._lock:
            if name in self._sessions:
                session.close()
                raise ValueError(f"dataset {name!r} is already registered; "
                                 "evict it first to replace it")
            self._sessions[name] = session
        try:
            session.open()
        except Exception:
            with self._lock:
                self._sessions.pop(name, None)
            session.close()
            raise
        return self.describe_one(name)

    def evict(self, name: str) -> None:
        """Close and drop the named session (detaches its backend)."""
        with self._lock:
            try:
                session = self._sessions.pop(name)
            except KeyError:
                raise DatasetNotRegistered(name, list(self._sessions)) from None
        session.close()

    def close_all(self) -> None:
        """Evict every session (server shutdown)."""
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session in sessions:
            session.close()

    # --------------------------------------------------------------- lookup
    def get(self, name: str) -> EngineSession:
        """The open session registered under ``name``."""
        with self._lock:
            try:
                return self._sessions[name]
            except KeyError:
                raise DatasetNotRegistered(name, list(self._sessions)) from None

    def names(self) -> List[str]:
        """Registered dataset names (sorted)."""
        with self._lock:
            return sorted(self._sessions)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    # ---------------------------------------------------------------- stats
    def describe_one(self, name: str) -> dict:
        """JSON-safe description of one registered dataset."""
        session = self.get(name)
        n, d = session.source.shape
        return {
            "name": name,
            "n_points": int(n),
            "n_dims": int(d),
            "backend": session.backend.name,
            "streams_self_joins": bool(session.streams_self_joins),
            "storage": session.source.storage_descriptor(),
            "cached_eps": [float(e) for e in session.cached_eps],
            "index_hits": session.stats.index_hits,
            "index_misses": session.stats.index_misses,
            "queries_run": session.stats.queries_run,
        }

    def describe(self) -> List[dict]:
        """Descriptions of every registered dataset."""
        return [self.describe_one(name) for name in self.names()]
