"""The asyncio front door: admission queue, tick loop, response streaming.

:class:`QueryService` is a stdlib-only asyncio TCP server in front of the
engine.  Division of labor per request:

* the **connection coroutine** decodes frames, answers control-plane ops
  (ping / stats / register / evict / list / shutdown) inline, and admits
  query ops to the bounded queue — a full queue answers ``REJECTED``
  immediately (backpressure) instead of queueing unboundedly;
* the **scheduler coroutine** drains the queue once per tick, fuses the
  burst (:func:`repro.service.scheduler.plan_tick`) and dispatches each
  work unit to a thread pool — engine operators are synchronous NumPy
  loops, so they run off the loop with a :func:`cancel_scope` carrying the
  request deadline (cooperative cancellation actually stops shard work);
* streamed CSR results flow worker → loop through a :class:`ChunkStream`
  whose bounded in-flight window gives end-to-end backpressure: a slow
  client blocks the posting worker, never the server's memory.

Wire semantics (one frame = JSON header + binary payload, see
:mod:`repro.service.protocol`): a query op's first response frame is either
``{"status": "rejected"}`` or ``{"status": "ok", "streaming": true}``;
streamed results follow as ``chunk`` frames and finish with an ``end``
frame whose ``final`` field is ``ok``/``timeout``/``error``.  Single-frame
ops (kNN, control plane) answer with one ``ok``/``timeout``/``error``
frame.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.nativekernels import kernel_tier_availability
from repro.engine.backends import backend_availability
from repro.service import protocol
from repro.service.catalog import DatasetNotRegistered, SessionCatalog
from repro.service.scheduler import (
    DEFAULT_CHUNK_PAIRS,
    Outcome,
    PendingRequest,
    QUERY_OPS,
    STREAMING_OPS,
    plan_tick,
    run_work_unit,
)
from repro.utils.cancellation import CancellationToken, OperationCancelled

#: Default burst-collection window of the scheduler tick (seconds).
DEFAULT_TICK_SECONDS = 0.002
#: Default bound on the admission queue (overload → REJECTED).
DEFAULT_MAX_PENDING = 64
#: Default size of the execution thread pool.
DEFAULT_WORKERS = 4


@dataclass
class ServiceStats:
    """Service-level counters (thread-safe; engine counters live per session)."""

    requests_total: int = 0
    by_op: Dict[str, int] = field(default_factory=dict)
    point_queries: int = 0
    fused_queries: int = 0
    fusion_batches: int = 0
    fusion_ticks: int = 0
    max_fused_in_tick: int = 0
    rejected: int = 0
    timeouts: int = 0
    errors: int = 0
    chunks_streamed: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def note_admitted(self, req: PendingRequest) -> None:
        with self._lock:
            self.requests_total += 1
            self.by_op[req.op] = self.by_op.get(req.op, 0) + 1
            if req.fusable:
                self.point_queries += 1

    def note_tick(self, units) -> None:
        fused_this_tick = 0
        with self._lock:
            for unit in units:
                if unit.fused:
                    self.fusion_batches += 1
                    self.fused_queries += len(unit.requests)
                    fused_this_tick += len(unit.requests)
            if fused_this_tick:
                self.fusion_ticks += 1
                self.max_fused_in_tick = max(self.max_fused_in_tick,
                                             fused_this_tick)

    def note_outcome(self, outcome: Outcome) -> None:
        with self._lock:
            if outcome.status == protocol.STATUS_TIMEOUT:
                self.timeouts += 1
            elif outcome.status == protocol.STATUS_ERROR:
                self.errors += 1

    def note_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def note_chunk(self) -> None:
        with self._lock:
            self.chunks_streamed += 1

    def snapshot(self) -> dict:
        with self._lock:
            fusion_ratio = (self.fused_queries / self.point_queries
                            if self.point_queries else 0.0)
            return {
                "requests_total": self.requests_total,
                "by_op": dict(self.by_op),
                "point_queries": self.point_queries,
                "fused_queries": self.fused_queries,
                "fusion_batches": self.fusion_batches,
                "fusion_ticks": self.fusion_ticks,
                "max_fused_in_tick": self.max_fused_in_tick,
                "fusion_ratio": fusion_ratio,
                "rejected": self.rejected,
                "timeouts": self.timeouts,
                "errors": self.errors,
                "chunks_streamed": self.chunks_streamed,
            }


class ChunkStream:
    """Bounded worker→loop conduit for one request's streamed result chunks.

    The worker thread ``post``s chunks; the connection coroutine iterates
    them.  At most ``max_inflight`` chunks are queued at once — ``post``
    blocks the worker past that, so a slow consumer throttles the producer
    instead of growing server memory (the sink path already bounds chunk
    size).  ``abort`` (client gone) unblocks and fails the producer at its
    next post, which unwinds the engine work through the cancel scope.
    """

    _DONE = object()

    def __init__(self, loop: asyncio.AbstractEventLoop,
                 max_inflight: int = 8) -> None:
        self._loop = loop
        self._queue: asyncio.Queue = asyncio.Queue()
        self._window = threading.Semaphore(max_inflight)
        self._max_inflight = max_inflight
        self._aborted = False

    # ---------------------------------------------------- worker-thread side
    def post(self, keys: np.ndarray, values: np.ndarray) -> None:
        if self._aborted:
            raise OperationCancelled("client gone")
        self._window.acquire()
        if self._aborted:
            raise OperationCancelled("client gone")
        self._loop.call_soon_threadsafe(self._queue.put_nowait, (keys, values))

    def close(self) -> None:
        """Terminate the stream (call from the loop thread)."""
        self._queue.put_nowait(self._DONE)

    # ------------------------------------------------------- loop-thread side
    def abort(self) -> None:
        """Release any blocked producer and fail its future posts."""
        self._aborted = True
        for _ in range(self._max_inflight):
            self._window.release()

    async def chunks(self):
        while True:
            item = await self._queue.get()
            if item is self._DONE:
                return
            try:
                yield item
            finally:
                self._window.release()


class QueryService:
    """The asyncio TCP query service (see module docstring)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 default_backend: str = "vectorized",
                 max_pending: int = DEFAULT_MAX_PENDING,
                 tick_seconds: float = DEFAULT_TICK_SECONDS,
                 workers: int = DEFAULT_WORKERS,
                 chunk_pairs: int = DEFAULT_CHUNK_PAIRS,
                 max_payload: int = protocol.DEFAULT_MAX_PAYLOAD_BYTES) -> None:
        self.host = host
        self.port = port
        self.catalog = SessionCatalog(default_backend=default_backend)
        self.stats = ServiceStats()
        self.max_pending = int(max_pending)
        self.tick_seconds = float(tick_seconds)
        self.n_workers = int(workers)
        self.chunk_pairs = int(chunk_pairs)
        self.max_payload = int(max_payload)
        self.started = time.monotonic()
        self._server: Optional[asyncio.AbstractServer] = None
        self._queue: Optional[asyncio.Queue] = None
        self._pool = None
        self._scheduler_task: Optional[asyncio.Task] = None
        self._stopping: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # -------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Bind the listener and start the scheduler; resolves ``self.port``."""
        from concurrent.futures import ThreadPoolExecutor

        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        self._queue = asyncio.Queue(maxsize=self.max_pending)
        self._pool = ThreadPoolExecutor(max_workers=self.n_workers,
                                        thread_name_prefix="repro-service")
        self._server = await asyncio.start_server(self._handle_connection,
                                                  self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._scheduler_task = asyncio.ensure_future(self._scheduler_loop())

    def request_stop(self) -> None:
        """Ask the service to shut down (safe from the loop thread)."""
        if self._stopping is not None:
            self._stopping.set()

    async def serve_until_stopped(self) -> None:
        """Serve until :meth:`request_stop`, then tear everything down."""
        await self._stopping.wait()
        self._server.close()
        await self._server.wait_closed()
        self._scheduler_task.cancel()
        try:
            await self._scheduler_task
        except asyncio.CancelledError:
            pass
        # Fail whatever is still queued so no client hangs on shutdown.
        while not self._queue.empty():
            req = self._queue.get_nowait()
            req.token.cancel("server stopped")
            self._finish(req, Outcome(protocol.STATUS_ERROR,
                                      message="server stopped"))
        self._pool.shutdown(wait=True)
        self.catalog.close_all()

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a scheduler tick."""
        return self._queue.qsize() if self._queue is not None else 0

    # -------------------------------------------------------------- scheduler
    async def _scheduler_loop(self) -> None:
        while True:
            first = await self._queue.get()
            if self.tick_seconds > 0:
                # Burst-collection window: co-arriving point queries land in
                # the same tick and fuse.
                await asyncio.sleep(self.tick_seconds)
            batch: List[PendingRequest] = [first]
            while True:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            units = plan_tick(batch)
            self.stats.note_tick(units)
            for unit in units:
                self._loop.run_in_executor(
                    self._pool, run_work_unit, unit, self.catalog,
                    self.chunk_pairs)

    def _resolve_threadsafe(self, req: PendingRequest,
                            outcome: Outcome) -> None:
        """Worker-side resolve callback: hop to the loop and finish there."""
        self._loop.call_soon_threadsafe(self._finish, req, outcome)

    def _finish(self, req: PendingRequest, outcome: Outcome) -> None:
        future = req.future
        if not future.done():
            self.stats.note_outcome(outcome)
            future.set_result(outcome)
        if req.stream is not None:
            req.stream.close()

    # ------------------------------------------------------------ connections
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    frame = await protocol.read_frame_async(
                        reader, max_payload=self.max_payload)
                except protocol.ProtocolError as exc:
                    # Best-effort structured error, then drop the connection:
                    # after a framing error the stream offset is unknown.
                    await self._write(writer, {"status": protocol.STATUS_ERROR,
                                               "message": str(exc)})
                    break
                if frame is None:
                    break
                header, payload = frame
                try:
                    await self._dispatch(writer, header, payload)
                except (ConnectionError, BrokenPipeError):
                    raise
                except Exception as exc:  # noqa: BLE001 - per-request wall
                    await self._write(writer, {"status": protocol.STATUS_ERROR,
                                               "message": f"{type(exc).__name__}: {exc}"})
        except (ConnectionError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _write(self, writer: asyncio.StreamWriter, header: dict,
                     payload: bytes = b"") -> None:
        writer.write(protocol.encode_frame(header, payload))
        await writer.drain()

    async def _dispatch(self, writer: asyncio.StreamWriter, header: dict,
                        payload: bytes) -> None:
        op = header.get("op")
        if op in QUERY_OPS:
            await self._handle_query(writer, header, payload)
        elif op == "ping":
            await self._write(writer, {"status": protocol.STATUS_OK,
                                       "pong": True})
        elif op == "stats":
            # Off the loop thread: distributed backends ping their workers
            # for liveness, which is blocking socket I/O.
            stats = await self._loop.run_in_executor(self._pool,
                                                     self._stats_payload)
            await self._write(writer, {"status": protocol.STATUS_OK,
                                       "stats": stats})
        elif op == "list":
            await self._write(writer, {"status": protocol.STATUS_OK,
                                       "datasets": self.catalog.describe()})
        elif op == "register":
            await self._handle_register(writer, header, payload)
        elif op == "evict":
            self.catalog.evict(str(header["name"]))
            await self._write(writer, {"status": protocol.STATUS_OK,
                                       "evicted": header["name"]})
        elif op == "shutdown":
            await self._write(writer, {"status": protocol.STATUS_OK,
                                       "stopping": True})
            self.request_stop()
        else:
            await self._write(writer, {"status": protocol.STATUS_ERROR,
                                       "message": f"unknown op {op!r}"})

    async def _handle_register(self, writer: asyncio.StreamWriter,
                               header: dict, payload: bytes) -> None:
        name = str(header["name"])
        backend = header.get("backend")
        store_path = header.get("store_path")
        data = None
        if store_path is None:
            arrays = protocol.unpack_arrays(header.get("arrays", ()), payload)
            if "points" not in arrays:
                raise ValueError("register without store_path needs a "
                                 "'points' array payload")
            data = arrays["points"]
        # Session open may build pools / memmap stores — keep it off the loop.
        info = await self._loop.run_in_executor(
            self._pool, lambda: self.catalog.register(
                name, data=data, store_path=store_path, backend=backend))
        await self._write(writer, {"status": protocol.STATUS_OK,
                                   "dataset": info})

    def _build_request(self, header: dict, payload: bytes) -> PendingRequest:
        arrays = protocol.unpack_arrays(header.get("arrays", ()), payload)
        points = arrays.get("points")
        if points is not None:
            points = np.ascontiguousarray(points, dtype=np.float64)
            if points.ndim != 2:
                raise ValueError("query points must be a 2-D array")
        timeout_ms = header.get("timeout_ms")
        token = CancellationToken.with_timeout(float(timeout_ms) / 1000.0) \
            if timeout_ms is not None else CancellationToken()
        return PendingRequest(
            op=str(header["op"]),
            dataset=str(header.get("dataset", "")),
            eps=float(header["eps"]) if header.get("eps") is not None else None,
            k=int(header["k"]) if header.get("k") is not None else None,
            points=points,
            unicomp=bool(header.get("unicomp", True)),
            include_self=bool(header.get("include_self", True)),
            fuse=bool(header.get("fuse", True)),
            seconds=float(header.get("seconds", 0.0)),
            token=token,
            resolve=self._resolve_threadsafe,
        )

    async def _handle_query(self, writer: asyncio.StreamWriter, header: dict,
                            payload: bytes) -> None:
        req = self._build_request(header, payload)
        # Fail fast on an unknown dataset — before burning a queue slot.
        if req.op != "_sleep":
            try:
                self.catalog.get(req.dataset)
            except DatasetNotRegistered as exc:
                await self._write(writer, {"status": protocol.STATUS_ERROR,
                                           "message": str(exc)})
                return
        req.future = self._loop.create_future()
        if req.op in STREAMING_OPS:
            req.stream = ChunkStream(self._loop)
        try:
            self._queue.put_nowait(req)
        except asyncio.QueueFull:
            # Backpressure: overload answers with a structured rejection
            # (and the current depth, so clients can back off) instead of
            # queueing unboundedly.
            self.stats.note_rejected()
            await self._write(writer, {"status": protocol.STATUS_REJECTED,
                                       "queue_depth": self.queue_depth,
                                       "max_pending": self.max_pending,
                                       "message": "admission queue full"})
            return
        self.stats.note_admitted(req)
        if req.stream is not None:
            # Streaming ops acknowledge admission up front, then chunk.
            await self._write(writer, {"status": protocol.STATUS_OK,
                                       "streaming": True})
            await self._stream_response(writer, req)
        else:
            outcome: Outcome = await req.future
            meta, body = protocol.pack_arrays(outcome.arrays or [])
            await self._write(writer, {"status": outcome.status,
                                       "message": outcome.message,
                                       "arrays": meta, **outcome.end}, body)

    async def _stream_response(self, writer: asyncio.StreamWriter,
                               req: PendingRequest) -> None:
        seq = 0
        try:
            async for keys, values in req.stream.chunks():
                meta, body = protocol.pack_arrays([("keys", keys),
                                                   ("values", values)])
                await self._write(writer, {"status": protocol.STATUS_CHUNK,
                                           "seq": seq,
                                           "pairs": int(keys.shape[0]),
                                           "arrays": meta}, body)
                self.stats.note_chunk()
                seq += 1
            outcome: Outcome = await req.future
            await self._write(writer, {"status": protocol.STATUS_END,
                                       "final": outcome.status,
                                       "message": outcome.message,
                                       "chunks": seq, **outcome.end})
        except BaseException:
            # Client gone (or handler cancelled) mid-stream: stop the engine
            # work and unblock a worker waiting on the chunk window.
            req.token.cancel("client gone")
            req.stream.abort()
            raise

    # ------------------------------------------------------------------ stats
    def _stats_payload(self) -> dict:
        return {
            "service": self.stats.snapshot(),
            "queue_depth": self.queue_depth,
            "max_pending": self.max_pending,
            "tick_seconds": self.tick_seconds,
            "workers": self.n_workers,
            "uptime_s": time.monotonic() - self.started,
            "datasets": self.catalog.describe(),
            "backend_availability": backend_availability(),
            "kernel_tier_availability": kernel_tier_availability(),
            "distributed": self._distributed_payload(),
        }

    def _distributed_payload(self) -> dict:
        """Per-dataset worker liveness and dispatch counters.

        Covers every registered session whose backend exposes
        ``distributed_snapshot()`` (the ``distributed`` backend); datasets
        sharing one backend instance report the same snapshot under each
        name.  Empty when nothing distributed is registered.
        """
        payload: dict = {}
        for name in self.catalog.names():
            try:
                backend = self.catalog.get(name).backend
            except DatasetNotRegistered:  # evicted between names() and get()
                continue
            snapshot = getattr(backend, "distributed_snapshot", None)
            if snapshot is None:
                continue
            try:
                payload[name] = snapshot()
            except Exception as exc:  # noqa: BLE001 - stats must not fail
                payload[name] = {"error": f"{type(exc).__name__}: {exc}"}
        return payload


class ServerThread:
    """Run a :class:`QueryService` on a dedicated thread (tests, examples).

    Context-manager usage::

        with ServerThread(tick_seconds=0.01) as server:
            client = ServiceClient(server.host, server.port)
            ...

    ``host``/``port`` resolve once the server is listening; ``stop()`` (or
    the context exit) shuts the service down and joins the thread.
    """

    def __init__(self, **service_kwargs) -> None:
        self._kwargs = service_kwargs
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.service: Optional[QueryService] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run,
                                        name="repro-service-loop", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("service thread failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError("service failed to start") from self._startup_error
        return self

    def _run(self) -> None:
        async def main():
            self.service = QueryService(**self._kwargs)
            try:
                await self.service.start()
            except BaseException as exc:  # noqa: BLE001 - reported to starter
                self._startup_error = exc
                self._ready.set()
                raise
            self._ready.set()
            await self.service.serve_until_stopped()

        try:
            asyncio.run(main())
        except Exception:
            if not self._ready.is_set():
                self._ready.set()

    @property
    def host(self) -> str:
        return self.service.host

    @property
    def port(self) -> int:
        return self.service.port

    def stop(self) -> None:
        if self.service is not None and self.service._loop is not None:
            try:
                self.service._loop.call_soon_threadsafe(
                    self.service.request_stop)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=30.0)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
