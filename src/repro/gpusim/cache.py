"""Set-associative cache model (the Pascal "unified" L1 cache).

The paper explains the unexpectedly large UNICOMP speedups on 5–6-D data by a
higher unified-cache bandwidth utilization (Table II): UNICOMP revisits the
same neighbor-cell point data from fewer distinct cells, improving temporal
locality.  This module provides a small LRU set-associative cache that the
instrumented kernel path (:mod:`repro.core.simkernels`) drives with the
addresses of its global loads, producing hit-rate and bytes-served counters
that the Table II experiment converts into a bandwidth-utilization proxy.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class CacheStats:
    """Hit/miss counters of a cache instance."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        """Total number of accesses."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served from the cache (0 when never accessed)."""
        return self.hits / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """LRU set-associative cache keyed by byte address.

    Parameters
    ----------
    size_bytes:
        Total cache capacity.
    line_bytes:
        Cache-line size; consecutive addresses within a line hit after the
        first miss (models the coalescing behaviour of the unified cache).
    associativity:
        Number of ways per set.
    """

    def __init__(self, size_bytes: int, line_bytes: int = 128, associativity: int = 4) -> None:
        if size_bytes <= 0 or line_bytes <= 0 or associativity <= 0:
            raise ValueError("cache parameters must be positive")
        num_lines = size_bytes // line_bytes
        if num_lines == 0:
            raise ValueError("cache must hold at least one line")
        self.line_bytes = int(line_bytes)
        self.associativity = int(min(associativity, num_lines))
        self.num_sets = max(1, num_lines // self.associativity)
        self.size_bytes = self.num_sets * self.associativity * self.line_bytes
        self._sets: list[OrderedDict[int, None]] = [OrderedDict() for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def access(self, address: int, nbytes: int = 8) -> bool:
        """Access ``nbytes`` at ``address``; returns ``True`` on a (full) hit.

        Accesses spanning multiple lines are split; the access counts as a hit
        only if every touched line hits.
        """
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        first_line = address // self.line_bytes
        last_line = (address + nbytes - 1) // self.line_bytes
        all_hit = True
        for line in range(first_line, last_line + 1):
            all_hit &= self._access_line(line)
        if all_hit:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        return all_hit

    def _access_line(self, line_tag: int) -> bool:
        """Access one cache line; returns hit/miss and updates LRU state."""
        set_index = line_tag % self.num_sets
        ways = self._sets[set_index]
        if line_tag in ways:
            ways.move_to_end(line_tag)
            return True
        ways[line_tag] = None
        if len(ways) > self.associativity:
            ways.popitem(last=False)
        return False

    @property
    def hit_rate(self) -> float:
        """Overall hit rate."""
        return self.stats.hit_rate

    def bytes_served_from_cache(self, bytes_per_access: int = 8) -> int:
        """Bytes of demand traffic served by cache hits (utilization proxy)."""
        return self.stats.hits * bytes_per_access

    def reset(self) -> None:
        """Clear contents and statistics."""
        for ways in self._sets:
            ways.clear()
        self.stats = CacheStats()
