"""Device specification and device object.

The default :data:`TITAN_X_PASCAL` specification mirrors the platform of the
paper's evaluation (Section VI-B): an NVIDIA TITAN X (Pascal architecture)
with 12 GiB of global memory; kernels are launched with 256 threads per
block.  Architectural constants (SM count, register file, cache sizes) are
taken from the public GP102 specification and are only used for occupancy and
cache modelling — they do not affect result correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.gpusim.memory import Allocation, GlobalMemory


@dataclass(frozen=True)
class DeviceSpec:
    """Static properties of the modelled GPU."""

    name: str = "TITAN X (Pascal)"
    sm_count: int = 28
    warp_size: int = 32
    max_threads_per_block: int = 1024
    max_threads_per_sm: int = 2048
    max_blocks_per_sm: int = 32
    registers_per_sm: int = 65536
    max_registers_per_thread: int = 255
    shared_mem_per_sm: int = 96 * 1024
    shared_mem_per_block: int = 48 * 1024
    unified_cache_bytes: int = 48 * 1024
    cache_line_bytes: int = 128
    cache_associativity: int = 4
    l2_cache_bytes: int = 3 * 1024 * 1024
    global_mem_bytes: int = 12 * 1024 ** 3
    mem_bandwidth_gbps: float = 480.0
    pcie_bandwidth_gbps: float = 12.0
    clock_ghz: float = 1.417

    @property
    def max_warps_per_sm(self) -> int:
        """Maximum number of resident warps per SM."""
        return self.max_threads_per_sm // self.warp_size

    @property
    def total_cores_hint(self) -> int:
        """Rough CUDA-core count (128 cores per Pascal SM); informational only."""
        return self.sm_count * 128


#: Default device specification matching the paper's evaluation platform.
TITAN_X_PASCAL = DeviceSpec()


class Device:
    """A modelled GPU: global-memory allocator plus named allocations.

    The device is the capacity authority the batching scheme plans against:
    the dataset ``D``, the index arrays and the per-batch result buffer must
    all fit in ``spec.global_mem_bytes``.
    """

    def __init__(self, spec: Optional[DeviceSpec] = None) -> None:
        self.spec = spec or TITAN_X_PASCAL
        self.memory = GlobalMemory(self.spec.global_mem_bytes)
        self._allocations: Dict[str, Allocation] = {}

    # ------------------------------------------------------------ allocation
    def allocate(self, name: str, nbytes: int) -> Allocation:
        """Allocate ``nbytes`` of global memory under ``name``.

        Raises
        ------
        repro.gpusim.memory.DeviceOutOfMemoryError
            If the allocation would exceed the device's global memory.
        ValueError
            If an allocation with the same name already exists.
        """
        if name in self._allocations:
            raise ValueError(f"allocation {name!r} already exists")
        alloc = self.memory.allocate(name, nbytes)
        self._allocations[name] = alloc
        return alloc

    def free(self, name: str) -> None:
        """Free the named allocation (no-op errors are surfaced as KeyError)."""
        alloc = self._allocations.pop(name)
        self.memory.free(alloc)

    def free_all(self) -> None:
        """Free every allocation on the device."""
        for name in list(self._allocations):
            self.free(name)

    def allocation(self, name: str) -> Allocation:
        """Return the named allocation."""
        return self._allocations[name]

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated."""
        return self.memory.used_bytes

    @property
    def free_bytes(self) -> int:
        """Bytes still available."""
        return self.memory.free_bytes

    # -------------------------------------------------------------- transfers
    def h2d_time(self, nbytes: int) -> float:
        """Estimated host-to-device transfer time in seconds (PCIe model)."""
        return self.memory.transfer_time(nbytes, self.spec.pcie_bandwidth_gbps)

    def d2h_time(self, nbytes: int) -> float:
        """Estimated device-to-host transfer time in seconds (PCIe model)."""
        return self.memory.transfer_time(nbytes, self.spec.pcie_bandwidth_gbps)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        gib = self.spec.global_mem_bytes / 1024 ** 3
        return (f"Device({self.spec.name!r}, {self.spec.sm_count} SMs, "
                f"{gib:.0f} GiB, used={self.used_bytes} B)")
