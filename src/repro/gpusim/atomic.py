"""Atomic primitives of the device model.

The paper's kernel appends results with an atomic update of a result-buffer
index (Algorithm 1, line 17).  :class:`AtomicCounter` models the counter and
:class:`AppendBuffer` models a fixed-capacity result buffer whose overflow is
exactly the condition the batching scheme must avoid.
"""

from __future__ import annotations


class BufferOverflowError(RuntimeError):
    """Raised when an :class:`AppendBuffer` reservation exceeds its capacity."""


class AtomicCounter:
    """A monotonically increasing counter with fetch-and-add semantics."""

    def __init__(self, initial: int = 0) -> None:
        self._value = int(initial)

    def fetch_add(self, amount: int = 1) -> int:
        """Add ``amount`` and return the value *before* the addition."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        old = self._value
        self._value += amount
        return old

    @property
    def value(self) -> int:
        """Current counter value."""
        return self._value

    def reset(self) -> None:
        """Reset the counter to zero."""
        self._value = 0


class AppendBuffer:
    """Fixed-capacity append buffer indexed through an atomic counter.

    Models the key/value result buffer in device global memory: each thread
    reserves a slot range atomically and writes its results there.  When the
    reservation exceeds the buffer capacity a :class:`BufferOverflowError` is
    raised — the situation the batch planner prevents by bounding the number
    of queries per batch.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._counter = AtomicCounter()

    def reserve(self, count: int) -> int:
        """Reserve ``count`` consecutive slots; returns the starting offset."""
        if count < 0:
            raise ValueError("count must be non-negative")
        start = self._counter.fetch_add(count)
        if start + count > self.capacity:
            raise BufferOverflowError(
                f"append of {count} items at offset {start} exceeds buffer "
                f"capacity {self.capacity}"
            )
        return start

    @property
    def used(self) -> int:
        """Number of slots reserved so far."""
        return self._counter.value

    @property
    def remaining(self) -> int:
        """Slots still available."""
        return self.capacity - self._counter.value

    def reset(self) -> None:
        """Empty the buffer (new batch)."""
        self._counter.reset()
