"""Kernel execution metrics collected by the device model.

The quantities mirror the nvprof counters the paper reports in Table II —
theoretical occupancy and unified-cache bandwidth utilization — plus the
divergence and load counters that motivate the grid index design
(Section IV-A): bounded, regular searches diverge less than tree traversals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.device import DeviceSpec, TITAN_X_PASCAL


@dataclass
class KernelMetrics:
    """Aggregated counters for one kernel launch on the device model."""

    threads_launched: int = 0
    warps_executed: int = 0
    global_loads: int = 0
    global_load_bytes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    results_emitted: int = 0
    #: Sum over warps of (max per-thread work) — the serialized work a SIMD
    #: warp must execute.
    warp_serialized_work: int = 0
    #: Sum over warps of (total per-thread work) — the useful work.
    warp_useful_work: int = 0
    theoretical_occupancy: float = 1.0
    registers_per_thread: int = 0
    spec: DeviceSpec = field(default_factory=lambda: TITAN_X_PASCAL)

    # ------------------------------------------------------------ divergence
    @property
    def divergence_factor(self) -> float:
        """Ratio of serialized to useful work (1.0 = perfectly converged warps)."""
        if self.warp_useful_work == 0:
            return 1.0
        return self.warp_serialized_work / self.warp_useful_work

    @property
    def simd_efficiency(self) -> float:
        """Useful lanes divided by executed lanes (inverse of divergence)."""
        if self.warp_serialized_work == 0:
            return 1.0
        return self.warp_useful_work / self.warp_serialized_work

    # ----------------------------------------------------------------- cache
    @property
    def cache_accesses(self) -> int:
        """Total cache accesses issued by global loads."""
        return self.cache_hits + self.cache_misses

    @property
    def cache_hit_rate(self) -> float:
        """Unified-cache hit rate."""
        return self.cache_hits / self.cache_accesses if self.cache_accesses else 0.0

    # ------------------------------------------------------------------ time
    def estimated_kernel_time(self) -> float:
        """Crude kernel-time estimate (seconds) from the memory system model.

        Misses are served at DRAM bandwidth and hits at an idealized cache
        bandwidth scaled by the theoretical occupancy (fewer resident warps
        expose less latency-hiding).  The estimate is only used to convert
        byte counters into bandwidth-utilization figures for Table II; the
        benchmark figures (4–9) use measured wall-clock time of the
        vectorized kernels instead.
        """
        line = self.spec.cache_line_bytes
        miss_bytes = self.cache_misses * line
        hit_bytes = self.cache_hits * 8
        dram_time = miss_bytes / (self.spec.mem_bandwidth_gbps * 1e9)
        cache_bandwidth = 4.0 * self.spec.mem_bandwidth_gbps * 1e9
        cache_time = hit_bytes / cache_bandwidth
        occupancy = max(self.theoretical_occupancy, 1e-3)
        return (dram_time + cache_time) / occupancy * self.divergence_factor

    def unified_cache_utilization_gbps(self) -> float:
        """Bytes served by the unified cache per estimated second (GB/s).

        This is the reproduction's proxy for the "unified cache bandwidth
        utilization" column of Table II.
        """
        t = self.estimated_kernel_time()
        if t <= 0:
            return 0.0
        return self.cache_hits * 8 / t / 1e9

    # ------------------------------------------------------------------ misc
    def merge(self, other: "KernelMetrics") -> "KernelMetrics":
        """Accumulate another launch's counters (occupancy is kept from self)."""
        self.threads_launched += other.threads_launched
        self.warps_executed += other.warps_executed
        self.global_loads += other.global_loads
        self.global_load_bytes += other.global_load_bytes
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.results_emitted += other.results_emitted
        self.warp_serialized_work += other.warp_serialized_work
        self.warp_useful_work += other.warp_useful_work
        return self
