"""Kernel launch machinery of the device model.

A launch decomposes ``n_threads`` into blocks of ``threads_per_block`` and
each block into warps of 32 lanes.  Every thread receives a
:class:`ThreadContext` through which its device function issues *global
loads* (routed through the unified-cache model), reports loop *work units*
(for divergence accounting) and *emits* result pairs (reserving space in an
:class:`~repro.gpusim.atomic.AppendBuffer` when one is attached).

The self-join device functions that run on this launcher live in
:mod:`repro.core.simkernels`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.gpusim.atomic import AppendBuffer
from repro.gpusim.cache import SetAssociativeCache
from repro.gpusim.device import Device, DeviceSpec
from repro.gpusim.metrics import KernelMetrics
from repro.gpusim.occupancy import theoretical_occupancy


@dataclass
class ThreadContext:
    """Per-thread instrumentation handle passed to device functions."""

    metrics: KernelMetrics
    cache: SetAssociativeCache
    array_bases: Dict[str, int]
    result_buffer: Optional[AppendBuffer] = None
    work_units: int = 0
    emitted: int = 0
    _next_base: int = field(default=0, repr=False)

    def load(self, array: str, index: int, nbytes: int = 8) -> None:
        """Record a global load of ``nbytes`` at ``array[index]``.

        The address is formed from the array's (simulated) base pointer plus
        ``index * nbytes`` and driven through the unified-cache model.
        """
        base = self.array_bases.get(array)
        if base is None:
            # Lazily place unknown arrays far apart so they do not alias.
            base = (len(self.array_bases) + 1) * (1 << 32)
            self.array_bases[array] = base
        address = base + index * nbytes
        hit = self.cache.access(address, nbytes)
        self.metrics.global_loads += 1
        self.metrics.global_load_bytes += nbytes
        if hit:
            self.metrics.cache_hits += 1
        else:
            self.metrics.cache_misses += 1

    def work(self, units: int = 1) -> None:
        """Record ``units`` of loop work for divergence accounting."""
        self.work_units += units

    def emit(self, count: int = 1) -> int:
        """Emit ``count`` result pairs (atomic buffer reservation when attached).

        Returns the starting offset in the result buffer (or the running
        per-thread count when no buffer is attached).
        """
        self.metrics.results_emitted += count
        self.emitted += count
        if self.result_buffer is not None:
            return self.result_buffer.reserve(count)
        return self.emitted - count


class KernelLaunch:
    """Configured kernel launcher bound to a device.

    Parameters
    ----------
    device:
        The :class:`~repro.gpusim.device.Device` to launch on (provides the
        spec for occupancy and cache parameters).
    threads_per_block:
        Launch configuration; the paper uses 256.
    registers_per_thread:
        Register footprint used for the theoretical-occupancy calculation.
    result_buffer:
        Optional append buffer shared by all threads of the launch.
    """

    def __init__(self, device: Device, threads_per_block: int = 256,
                 registers_per_thread: int = 32,
                 result_buffer: Optional[AppendBuffer] = None) -> None:
        self.device = device
        self.spec: DeviceSpec = device.spec
        if threads_per_block <= 0 or threads_per_block > self.spec.max_threads_per_block:
            raise ValueError("invalid threads_per_block for this device")
        self.threads_per_block = int(threads_per_block)
        self.registers_per_thread = int(registers_per_thread)
        self.result_buffer = result_buffer

    def launch(self, n_threads: int,
               device_fn: Callable[[ThreadContext, int], None]) -> KernelMetrics:
        """Execute ``device_fn`` for ``n_threads`` threads and return metrics.

        Threads whose global id is ``>= n_threads`` simply do not exist in the
        model (the real kernel's early-return on line 3 of Algorithm 1), so
        the last warp may be partially filled.
        """
        if n_threads < 0:
            raise ValueError("n_threads must be non-negative")
        occ = theoretical_occupancy(self.threads_per_block, self.registers_per_thread,
                                    spec=self.spec)
        metrics = KernelMetrics(spec=self.spec,
                                theoretical_occupancy=occ.occupancy,
                                registers_per_thread=self.registers_per_thread)
        cache = SetAssociativeCache(self.spec.unified_cache_bytes,
                                    self.spec.cache_line_bytes,
                                    self.spec.cache_associativity)
        array_bases: Dict[str, int] = {}

        warp_size = self.spec.warp_size
        for warp_start in range(0, n_threads, warp_size):
            lanes = range(warp_start, min(warp_start + warp_size, n_threads))
            works = []
            for gid in lanes:
                ctx = ThreadContext(metrics=metrics, cache=cache,
                                    array_bases=array_bases,
                                    result_buffer=self.result_buffer)
                device_fn(ctx, gid)
                works.append(ctx.work_units)
            metrics.threads_launched += len(works)
            metrics.warps_executed += 1
            if works:
                metrics.warp_serialized_work += max(works) * len(works)
                metrics.warp_useful_work += sum(works)
        return metrics
