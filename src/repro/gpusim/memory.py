"""Global-memory allocator and transfer-time model.

The allocator enforces the 12 GiB capacity of the modelled device.  The
batching scheme (Section V-A of the paper) exists precisely because the
self-join result set can exceed this capacity in low dimensions; the planner
in :mod:`repro.core.batching` uses this allocator to size the per-batch
result buffer.
"""

from __future__ import annotations

from dataclasses import dataclass


class DeviceOutOfMemoryError(MemoryError):
    """Raised when an allocation exceeds the device's global-memory capacity."""


@dataclass(frozen=True)
class Allocation:
    """A named slice of device global memory."""

    name: str
    offset: int
    nbytes: int

    @property
    def end(self) -> int:
        """One past the last byte of the allocation."""
        return self.offset + self.nbytes


class GlobalMemory:
    """Bump allocator with explicit free tracking.

    The model does not need a real free-list; allocations are tracked by
    total size only (fragmentation is irrelevant to the experiments), but
    offsets are still handed out so thread contexts can form distinct
    addresses per array for the cache model.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self._used = 0
        self._next_offset = 0

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated."""
        return self._used

    @property
    def free_bytes(self) -> int:
        """Bytes available for further allocations."""
        return self.capacity_bytes - self._used

    def allocate(self, name: str, nbytes: int) -> Allocation:
        """Reserve ``nbytes``; raises :class:`DeviceOutOfMemoryError` on overflow."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if self._used + nbytes > self.capacity_bytes:
            raise DeviceOutOfMemoryError(
                f"allocation {name!r} of {nbytes} B exceeds device capacity: "
                f"{self.free_bytes} B free of {self.capacity_bytes} B"
            )
        alloc = Allocation(name=name, offset=self._next_offset, nbytes=nbytes)
        self._used += nbytes
        # Keep addresses cache-line aligned so the cache model sees realistic bases.
        self._next_offset += max(nbytes, 1)
        self._next_offset = (self._next_offset + 127) // 128 * 128
        return alloc

    def free(self, allocation: Allocation) -> None:
        """Release an allocation's bytes back to the pool."""
        self._used -= allocation.nbytes
        if self._used < 0:
            raise RuntimeError("double free detected: used bytes became negative")

    @staticmethod
    def transfer_time(nbytes: int, bandwidth_gbps: float) -> float:
        """Idealized transfer time (seconds) over a link of ``bandwidth_gbps`` GB/s."""
        if bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")
        return float(nbytes) / (bandwidth_gbps * 1e9)
