"""Stream/transfer pipeline model for the batching scheme.

Section V-A of the paper batches the result set so that (i) it never exceeds
the GPU's global memory and (ii) result transfers back to the host overlap
with the computation of the next batch.  The paper always uses at least three
batches because with three CUDA streams the device-to-host copy of batch *i*
and the kernel of batch *i+1* can proceed concurrently.

:func:`simulate_pipeline` reproduces that timeline arithmetic: given per-batch
compute times and per-batch result sizes it returns the makespan of the
non-overlapped (serial) schedule and of the overlapped schedule with a given
number of streams, which the ablation bench for batching reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass
class PipelineReport:
    """Timeline summary of a batched execution."""

    n_batches: int
    compute_time: float
    transfer_time: float
    serial_time: float
    overlapped_time: float

    @property
    def overlap_speedup(self) -> float:
        """Serial over overlapped makespan (>= 1 when overlap helps)."""
        if self.overlapped_time <= 0:
            return 1.0
        return self.serial_time / self.overlapped_time

    @property
    def overlap_efficiency(self) -> float:
        """How close the overlapped schedule is to the max(compute, transfer) bound."""
        bound = max(self.compute_time, self.transfer_time)
        if self.overlapped_time <= 0:
            return 1.0
        return bound / self.overlapped_time


def simulate_pipeline(batch_compute_times: Sequence[float],
                      batch_result_bytes: Sequence[int],
                      pcie_bandwidth_gbps: float = 12.0,
                      n_streams: int = 3) -> PipelineReport:
    """Simulate the batched compute/transfer pipeline.

    Parameters
    ----------
    batch_compute_times:
        Kernel time of each batch in seconds.
    batch_result_bytes:
        Result-set size of each batch in bytes (device-to-host transfer).
    pcie_bandwidth_gbps:
        Host link bandwidth in GB/s.
    n_streams:
        Number of streams; ``1`` disables overlap (serial schedule).

    Returns
    -------
    PipelineReport

    Notes
    -----
    The overlap model is the standard one-copy-engine pipeline: kernels
    execute serially on the device, transfers execute serially on the copy
    engine, and with more than one stream the transfer of batch ``i`` may run
    concurrently with the kernel of any later batch.  The makespan is
    computed by a simple event simulation of those two resources.
    """
    if len(batch_compute_times) != len(batch_result_bytes):
        raise ValueError("compute times and result sizes must have equal length")
    if n_streams < 1:
        raise ValueError("n_streams must be >= 1")
    transfers: List[float] = [b / (pcie_bandwidth_gbps * 1e9) for b in batch_result_bytes]
    computes = [float(t) for t in batch_compute_times]
    n = len(computes)
    serial_time = sum(computes) + sum(transfers)

    if n_streams == 1 or n == 0:
        overlapped = serial_time
    else:
        kernel_free = 0.0     # time the compute engine becomes available
        copy_free = 0.0       # time the copy engine becomes available
        overlapped = 0.0
        for i in range(n):
            kernel_start = kernel_free
            kernel_end = kernel_start + computes[i]
            kernel_free = kernel_end
            copy_start = max(copy_free, kernel_end)
            copy_end = copy_start + transfers[i]
            copy_free = copy_end
            overlapped = max(overlapped, copy_end)

    return PipelineReport(
        n_batches=n,
        compute_time=sum(computes),
        transfer_time=sum(transfers),
        serial_time=serial_time,
        overlapped_time=overlapped,
    )
