"""Theoretical occupancy calculator (CUDA occupancy model).

Table II of the paper reports the *theoretical occupancy* of the self-join
kernel with and without UNICOMP: UNICOMP uses more registers per thread,
which lowers the number of warps that can be resident on an SM.  This module
reproduces the standard occupancy calculation: the number of resident blocks
per SM is the minimum of the limits imposed by warps, registers, shared
memory and the block-count cap; occupancy is resident warps divided by the
SM's maximum resident warps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import DeviceSpec, TITAN_X_PASCAL

#: Register allocation granularity (registers are allocated per warp in
#: multiples of this on Maxwell/Pascal).
REGISTER_ALLOCATION_UNIT = 256


@dataclass(frozen=True)
class OccupancyResult:
    """Outcome of the occupancy calculation."""

    threads_per_block: int
    registers_per_thread: int
    shared_mem_per_block: int
    blocks_per_sm: int
    active_warps_per_sm: int
    max_warps_per_sm: int
    limiting_factor: str

    @property
    def occupancy(self) -> float:
        """Theoretical occupancy in [0, 1]."""
        if self.max_warps_per_sm == 0:
            return 0.0
        return self.active_warps_per_sm / self.max_warps_per_sm


def _registers_per_block(spec: DeviceSpec, threads_per_block: int,
                         registers_per_thread: int) -> int:
    """Registers consumed by one block, with per-warp allocation granularity."""
    warps = -(-threads_per_block // spec.warp_size)
    regs_per_warp = registers_per_thread * spec.warp_size
    regs_per_warp = -(-regs_per_warp // REGISTER_ALLOCATION_UNIT) * REGISTER_ALLOCATION_UNIT
    return warps * regs_per_warp


def theoretical_occupancy(threads_per_block: int, registers_per_thread: int,
                          shared_mem_per_block: int = 0,
                          spec: DeviceSpec = TITAN_X_PASCAL) -> OccupancyResult:
    """Compute theoretical occupancy for a kernel configuration.

    Parameters
    ----------
    threads_per_block:
        Launch configuration (the paper uses 256).
    registers_per_thread:
        Registers the compiler assigned per thread; the UNICOMP kernel uses
        more registers than the GLOBAL kernel, and register use grows with
        dimensionality (the coordinates are held in registers).
    shared_mem_per_block:
        Static + dynamic shared memory per block (the paper's kernels use no
        shared memory, so this defaults to zero).
    spec:
        Device specification.

    Returns
    -------
    OccupancyResult
    """
    if threads_per_block <= 0 or threads_per_block > spec.max_threads_per_block:
        raise ValueError(
            f"threads_per_block must be in (0, {spec.max_threads_per_block}]"
        )
    if registers_per_thread <= 0 or registers_per_thread > spec.max_registers_per_thread:
        raise ValueError(
            f"registers_per_thread must be in (0, {spec.max_registers_per_thread}]"
        )
    if shared_mem_per_block < 0 or shared_mem_per_block > spec.shared_mem_per_block:
        raise ValueError(
            f"shared_mem_per_block must be in [0, {spec.shared_mem_per_block}]"
        )

    warps_per_block = -(-threads_per_block // spec.warp_size)

    limit_warps = spec.max_warps_per_sm // warps_per_block
    regs_per_block = _registers_per_block(spec, threads_per_block, registers_per_thread)
    limit_regs = spec.registers_per_sm // regs_per_block if regs_per_block else spec.max_blocks_per_sm
    if shared_mem_per_block > 0:
        limit_smem = spec.shared_mem_per_sm // shared_mem_per_block
    else:
        limit_smem = spec.max_blocks_per_sm
    limit_blocks = spec.max_blocks_per_sm

    limits = {
        "warps": limit_warps,
        "registers": limit_regs,
        "shared_memory": limit_smem,
        "blocks": limit_blocks,
    }
    limiting_factor = min(limits, key=lambda k: limits[k])
    blocks_per_sm = max(0, min(limits.values()))
    active_warps = blocks_per_sm * warps_per_block

    return OccupancyResult(
        threads_per_block=threads_per_block,
        registers_per_thread=registers_per_thread,
        shared_mem_per_block=shared_mem_per_block,
        blocks_per_sm=blocks_per_sm,
        active_warps_per_sm=active_warps,
        max_warps_per_sm=spec.max_warps_per_sm,
        limiting_factor=limiting_factor,
    )


def estimate_registers_per_thread(n_dims: int, unicomp: bool) -> int:
    """Heuristic register-count model for the self-join kernels.

    The paper observes (Table II) that (i) register use grows with
    dimensionality because the query point's coordinates and per-dimension
    loop state live in registers, and (ii) UNICOMP uses additional registers
    for the parity bookkeeping and the duplicated emit path, lowering
    occupancy from 100% to 75% in 2-D and from 62.5% to 50% in 5–6-D at 256
    threads per block.  The linear model below (4 registers per extra
    dimension, 8 extra registers for UNICOMP on a 32-register 2-D base) is
    fitted so the occupancy calculator reproduces exactly those Table II
    values.
    """
    if n_dims < 1:
        raise ValueError("n_dims must be >= 1")
    base = 32 + 4 * max(0, n_dims - 2)
    if unicomp:
        base += 8
    return min(base, 255)
