"""SIMT device model substituting for the CUDA GPU used in the paper.

The paper evaluates on an NVIDIA TITAN X (Pascal) with CUDA kernels and
nvprof metrics.  No GPU is available to this reproduction, so this package
provides a functional device model that exercises the same code paths the
paper's design depends on:

* :mod:`repro.gpusim.device` / :mod:`repro.gpusim.memory` — a device
  specification (SM count, registers, cache sizes, 12 GiB global memory) and
  a global-memory allocator, so the batching scheme has a real capacity
  constraint to plan against.
* :mod:`repro.gpusim.kernel` / :mod:`repro.gpusim.warp` — a kernel launcher
  that decomposes a launch into blocks and 32-thread warps, executes a
  per-thread device function, and accounts for warp divergence (the paper's
  motivation for a bounded, regular grid search).
* :mod:`repro.gpusim.cache` — a set-associative unified (L1) cache model used
  to produce the cache-utilization proxy reported in Table II.
* :mod:`repro.gpusim.occupancy` — a CUDA-style theoretical occupancy
  calculator (registers/threads/blocks limits), also for Table II.
* :mod:`repro.gpusim.streams` — a stream/transfer timeline used to model the
  compute/transfer overlap of the batching scheme (Section V-A).

The model is *not* a cycle-accurate simulator; it is an instrumentation layer
whose counters behave the way the paper's profiler metrics do (see DESIGN.md
section 2 for the substitution rationale).
"""

from repro.gpusim.device import Device, DeviceSpec, TITAN_X_PASCAL
from repro.gpusim.memory import Allocation, DeviceOutOfMemoryError, GlobalMemory
from repro.gpusim.atomic import AppendBuffer, AtomicCounter, BufferOverflowError
from repro.gpusim.occupancy import OccupancyResult, theoretical_occupancy
from repro.gpusim.cache import SetAssociativeCache
from repro.gpusim.kernel import KernelLaunch, ThreadContext
from repro.gpusim.metrics import KernelMetrics
from repro.gpusim.streams import PipelineReport, simulate_pipeline

__all__ = [
    "Device",
    "DeviceSpec",
    "TITAN_X_PASCAL",
    "Allocation",
    "DeviceOutOfMemoryError",
    "GlobalMemory",
    "AppendBuffer",
    "AtomicCounter",
    "BufferOverflowError",
    "OccupancyResult",
    "theoretical_occupancy",
    "SetAssociativeCache",
    "KernelLaunch",
    "ThreadContext",
    "KernelMetrics",
    "PipelineReport",
    "simulate_pipeline",
]
