"""Warp-level execution of per-thread device functions.

A warp executes its (up to 32) threads logically in lockstep.  In the model,
every thread runs its device function to completion and reports the amount of
loop "work" it performed; the warp then charges the *maximum* per-thread work
to every lane, which is exactly the serialization penalty branch divergence
causes on real SIMD hardware.  The difference between charged and useful work
is surfaced through :class:`repro.gpusim.metrics.KernelMetrics`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.gpusim.kernel import ThreadContext


@dataclass
class WarpResult:
    """Work accounting for one executed warp."""

    lanes: int
    max_work: int
    total_work: int

    @property
    def serialized_work(self) -> int:
        """Work the SIMD warp executes when every lane follows the longest path."""
        return self.max_work * self.lanes

    @property
    def divergence_factor(self) -> float:
        """Serialized over useful work for this warp (>= 1)."""
        if self.total_work == 0:
            return 1.0
        return self.serialized_work / self.total_work


def execute_warp(device_fn: Callable[[ThreadContext, int], None],
                 thread_ids: Sequence[int],
                 contexts: Sequence[ThreadContext]) -> WarpResult:
    """Run one warp of threads and account for divergence.

    Parameters
    ----------
    device_fn:
        The per-thread device function ``fn(ctx, gid)``.
    thread_ids:
        Global thread ids of the lanes in this warp.
    contexts:
        One :class:`ThreadContext` per lane (pre-constructed by the launcher).

    Returns
    -------
    WarpResult
    """
    if len(thread_ids) != len(contexts):
        raise ValueError("thread_ids and contexts must have equal length")
    works = []
    for gid, ctx in zip(thread_ids, contexts):
        device_fn(ctx, gid)
        works.append(ctx.work_units)
    if not works:
        return WarpResult(lanes=0, max_work=0, total_work=0)
    return WarpResult(lanes=len(works), max_work=max(works), total_work=sum(works))
