"""Dataset substrate: generators, the Table I registry, and dataset sources.

Besides the synthetic/real-world generators, this package owns the
:class:`~repro.data.store.DatasetSource` seam — in-memory
:class:`~repro.data.store.ArraySource` and the on-disk, grid-ordered
:class:`~repro.data.store.SpatialStore` the out-of-core execution streams
from.
"""

from repro.data.synthetic import (
    exponential_dataset,
    gaussian_clusters,
    thomas_process,
    uniform_dataset,
)
from repro.data.realworld import sdss_dataset, sw_dataset
from repro.data.datasets import DatasetSpec, DATASETS, load_dataset, list_datasets
from repro.data.normalize import normalize_minmax, denormalize_minmax
from repro.data.store import (
    ArraySource,
    DatasetIdentity,
    DatasetSource,
    SpatialStore,
    as_dataset_source,
    dataset_identity,
)

__all__ = [
    "ArraySource",
    "DatasetIdentity",
    "DatasetSource",
    "SpatialStore",
    "as_dataset_source",
    "dataset_identity",
    "uniform_dataset",
    "gaussian_clusters",
    "exponential_dataset",
    "thomas_process",
    "sw_dataset",
    "sdss_dataset",
    "DatasetSpec",
    "DATASETS",
    "load_dataset",
    "list_datasets",
    "normalize_minmax",
    "denormalize_minmax",
]
