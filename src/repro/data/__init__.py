"""Dataset substrate: synthetic generators, real-world surrogates and the Table I registry."""

from repro.data.synthetic import (
    exponential_dataset,
    gaussian_clusters,
    thomas_process,
    uniform_dataset,
)
from repro.data.realworld import sdss_dataset, sw_dataset
from repro.data.datasets import DatasetSpec, DATASETS, load_dataset, list_datasets
from repro.data.normalize import normalize_minmax, denormalize_minmax

__all__ = [
    "uniform_dataset",
    "gaussian_clusters",
    "exponential_dataset",
    "thomas_process",
    "sw_dataset",
    "sdss_dataset",
    "DatasetSpec",
    "DATASETS",
    "load_dataset",
    "list_datasets",
    "normalize_minmax",
    "denormalize_minmax",
]
