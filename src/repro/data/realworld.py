"""Surrogates for the paper's real-world datasets.

The paper evaluates on two families of real-world data (Table I):

* **SW-** — latitude/longitude (2-D) and total electron content (3rd
  dimension) of ionospheric monitoring data (1.86M and 5.16M points).  The
  original FTP source is no longer reachable, so :func:`sw_dataset` generates
  a surrogate with the property that matters to the algorithms: a spatially
  *clustered* receiver network (dense bands over a few geographic regions)
  with a correlated, skewed TEC value.
* **SDSS-** — galaxies from SDSS DR12 in 2-D angular coordinates (2M and
  15.2M points).  Galaxy catalogs are hierarchically clustered;
  :func:`sdss_dataset` uses a Thomas cluster process plus a uniform
  background, the standard synthetic stand-in.

Both surrogates are deterministic given a seed and are scaled down by the
experiment harness (see EXPERIMENTS.md for the sizes actually used).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.synthetic import thomas_process


def sw_dataset(n_points: int, n_dims: int = 2, seed: Optional[int] = 0) -> np.ndarray:
    """Space-weather (ionosphere TEC) surrogate in 2-D or 3-D.

    The 2-D variant returns (longitude, latitude) in degrees; the 3-D variant
    appends a total-electron-content value correlated with latitude (TEC is
    largest near the geomagnetic equator) and log-normally skewed.

    Parameters
    ----------
    n_points:
        Number of points.
    n_dims:
        2 (lon/lat) or 3 (lon/lat/TEC), as in the paper.
    seed:
        RNG seed.
    """
    if n_dims not in (2, 3):
        raise ValueError("the SW- surrogate supports 2 or 3 dimensions")
    rng = np.random.default_rng(seed)

    # Receiver networks concentrate over a few land regions: model them as a
    # mixture of anisotropic Gaussian patches plus a sparse global background.
    regions = np.array([
        #  lon_center, lat_center, lon_std, lat_std, weight
        [-100.0, 40.0, 15.0, 8.0, 0.35],   # North America
        [10.0, 48.0, 12.0, 6.0, 0.25],     # Europe
        [135.0, 35.0, 10.0, 6.0, 0.15],    # East Asia
        [-60.0, -15.0, 12.0, 8.0, 0.10],   # South America
        [25.0, -28.0, 10.0, 6.0, 0.05],    # Southern Africa
    ])
    weights = regions[:, 4] / regions[:, 4].sum()
    background_fraction = 0.10
    n_background = int(round(n_points * background_fraction))
    n_clustered = n_points - n_background

    assignment = rng.choice(regions.shape[0], size=n_clustered, p=weights)
    lon = regions[assignment, 0] + rng.normal(0.0, regions[assignment, 2])
    lat = regions[assignment, 1] + rng.normal(0.0, regions[assignment, 3])
    lon_bg = rng.uniform(-180.0, 180.0, size=n_background)
    lat_bg = rng.uniform(-75.0, 75.0, size=n_background)
    lon = np.concatenate([lon, lon_bg])
    lat = np.concatenate([lat, lat_bg])
    lon = np.clip(lon, -180.0, 180.0)
    lat = np.clip(lat, -85.0, 85.0)

    if n_dims == 2:
        pts = np.stack([lon, lat], axis=1)
    else:
        # TEC (in TEC units) peaks near the equator and is right-skewed.
        equatorial = np.exp(-np.abs(lat) / 30.0)
        tec = 20.0 + 60.0 * equatorial * rng.lognormal(mean=0.0, sigma=0.35, size=lon.shape[0])
        pts = np.stack([lon, lat, tec], axis=1)
    order = rng.permutation(pts.shape[0])
    return pts[order].astype(np.float64)


def sdss_dataset(n_points: int, seed: Optional[int] = 0) -> np.ndarray:
    """SDSS galaxy-catalog surrogate: clustered 2-D angular positions.

    Galaxies in the redshift slice the paper uses (0.30 ≤ z ≤ 0.35) cover the
    SDSS footprint — roughly RA ∈ [110°, 260°], Dec ∈ [-5°, 70°] — and are
    strongly clustered on small angular scales.  The surrogate is a Thomas
    cluster process over that footprint with a 20% uniform background.
    """
    rng_seed = seed if seed is not None else 0
    pts = thomas_process(
        n_points=n_points,
        n_dims=2,
        parent_intensity=max(64, n_points // 400),
        cluster_std=0.35,
        seed=rng_seed,
        low=0.0,
        high=1.0,
        background_fraction=0.2,
    )
    # Map the unit square onto the SDSS footprint.
    ra = 110.0 + pts[:, 0] * (260.0 - 110.0)
    dec = -5.0 + pts[:, 1] * (70.0 - (-5.0))
    return np.stack([ra, dec], axis=1).astype(np.float64)
