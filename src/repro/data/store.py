"""Dataset sources: one seam between the engine and where the points live.

The paper batches the self-join precisely because neither the result nor —
on real systems — the dataset needs to be resident at once.  A
:class:`DatasetSource` is that observation lifted into the API: every layer
of the engine that used to take a raw ``np.ndarray`` now accepts a source,
and the source decides the physical representation:

:class:`ArraySource`
    An in-memory array (today's behavior; raw arrays auto-wrap, so existing
    call sites keep working unchanged).

:class:`SpatialStore`
    An on-disk, memmap-able format holding the points **sorted in grid
    B-order** for a chosen layout cell width, next to a per-cell offset
    directory.  Because a shard of the grid is a contiguous run of the
    directory — and its ε-halo is a small set of nearby directory runs —
    any shard's points *plus everything within ε of them* can be read as a
    few contiguous slices without ever materializing the whole dataset.
    That is what lets the ``sharded`` backend stream a self-join over a
    dataset larger than memory (see
    :meth:`repro.parallel.sharded.ShardedBackend.run_selfjoin_streamed`)
    and the ``multiprocess`` backend map the file in its workers instead of
    creating a shared-memory copy.

On-disk layout (a directory)::

    <path>/
      meta.json         format version, shape, layout cell width, grid
                        geometry (gmin/gmax/num_cells/strides)
      points.npy        (n, d) float64, rows sorted by linearized layout
                        cell id (B-order) — memmap-able
      ids.npy           (n,)   int64 original dataset row id per stored row
      cells.npy         (|G|,) int64 sorted non-empty layout cell ids
      cell_starts.npy   (|G|,) int64 first stored row of each cell
      cell_counts.npy   (|G|,) int64 rows per cell

The *logical* dataset of a store is the original row order: every read path
translates stored rows back through ``ids``, so a join over a
``SpatialStore`` emits exactly the same point ids as one over the array it
was written from.  Streamed reads go through :meth:`SpatialStore.read_rows`
(positioned file reads, so even the address-space footprint stays bounded
by the slice, not the file) rather than a whole-file memmap.
"""

from __future__ import annotations

import abc
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.core import linearize as lin
from repro.core.gridindex import _run_length_encode
from repro.utils.validation import check_eps, check_points

#: On-disk format version (bump on incompatible layout changes).
FORMAT_VERSION = 1

#: Target average points per layout cell when no cell width is given to
#: :meth:`SpatialStore.write`; large enough that the per-cell directory is a
#: small fraction of the point data, small enough that a shard's ε-halo
#: stays a thin boundary layer.
DEFAULT_POINTS_PER_CELL = 64

#: Rows sampled (evenly strided) into dataset fingerprints.
_FINGERPRINT_SAMPLE_ROWS = 256

#: Cap on candidate cells materialized per halo-expansion chunk
#: (block · (2r+1)^d); keeps the expansion's working set a few MB even for
#: wide halos in high dimensions.
_HALO_PAIR_BUDGET = 65_536


@dataclass(frozen=True)
class DatasetIdentity:
    """Identity of a dataset, usable as a pool/cache key.

    For in-memory arrays ``array_id`` is the CPython object id of the
    normalized points array — stable while a session holds its reference,
    but reusable after the array is freed; the sampled content
    ``fingerprint`` guards cached per-dataset resources (idle worker pools
    holding old shared-memory copies) against such id reuse.  On-disk
    stores derive ``array_id`` from the resolved path instead, so two
    sessions opening the same store share cached resources.
    """

    array_id: int
    shape: Tuple[int, ...]
    dtype: str
    fingerprint: str


def dataset_identity(points: np.ndarray) -> DatasetIdentity:
    """Compute the :class:`DatasetIdentity` of a normalized points array."""
    n = points.shape[0]
    step = max(1, n // _FINGERPRINT_SAMPLE_ROWS)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(np.ascontiguousarray(points[::step]).tobytes())
    digest.update(np.asarray(points.shape, dtype=np.int64).tobytes())
    return DatasetIdentity(array_id=id(points), shape=tuple(points.shape),
                           dtype=str(points.dtype),
                           fingerprint=digest.hexdigest())


@dataclass
class StoreReadStats:
    """Cumulative read counters of one :class:`SpatialStore` instance.

    Tests assert the streaming contract directly on these: a streamed shard
    performs a handful of *coalesced* contiguous reads (``reads``) covering
    only its slice plus halo (``rows_read``), never the whole file at once.
    """

    reads: int = 0
    rows_read: int = 0


class DatasetSource(abc.ABC):
    """Where a dataset physically lives, behind one engine-facing protocol.

    The engine needs three things from a source: its logical geometry
    (:attr:`shape`), a full in-memory materialization for backends that
    need one (:meth:`as_array` — in original row order, so ids emitted by
    any execution path agree), and an :meth:`identity` for keying cached
    per-dataset resources.  Sources that can serve bounded slices opt into
    streaming via :attr:`supports_streaming`; sources backed by a file opt
    into worker-side mapping via :meth:`storage_descriptor`.
    """

    @property
    @abc.abstractmethod
    def shape(self) -> Tuple[int, int]:
        """``(n_points, n_dims)`` of the logical dataset."""

    @property
    def n_points(self) -> int:
        """Number of points in the logical dataset."""
        return int(self.shape[0])

    @property
    def n_dims(self) -> int:
        """Dimensionality of the logical dataset."""
        return int(self.shape[1])

    #: Whether the source can serve a shard's points plus ε-halo as bounded
    #: slices without materializing the dataset (see :class:`SpatialStore`).
    supports_streaming: bool = False

    @abc.abstractmethod
    def as_array(self) -> np.ndarray:
        """The full dataset as a normalized array in original row order.

        For an on-disk source this *materializes* the dataset (O(n) memory)
        and is only taken by execution paths that need the whole array —
        the streamed paths never call it.
        """

    @abc.abstractmethod
    def identity(self) -> DatasetIdentity:
        """Stable identity for keying per-dataset caches and worker pools."""

    def storage_descriptor(self) -> Optional[str]:
        """Path workers can map the dataset from (``None``: memory-only).

        The ``multiprocess`` backend uses this to map the file in each
        worker instead of creating a shared-memory copy of the points.
        """
        return None


def as_dataset_source(data: Union[np.ndarray, DatasetSource]) -> DatasetSource:
    """Wrap raw arrays in an :class:`ArraySource`; pass sources through."""
    if isinstance(data, DatasetSource):
        return data
    return ArraySource(data)


class ArraySource(DatasetSource):
    """In-memory dataset source (the auto-wrap of a raw points array)."""

    def __init__(self, points: np.ndarray) -> None:
        self._points = check_points(points)

    @property
    def shape(self) -> Tuple[int, int]:
        return (int(self._points.shape[0]), int(self._points.shape[1]))

    def as_array(self) -> np.ndarray:
        return self._points

    def identity(self) -> DatasetIdentity:
        return dataset_identity(self._points)


def _npy_data_offset(path: Path) -> int:
    """Byte offset of the array data inside a ``.npy`` file."""
    with open(path, "rb") as f:
        version = np.lib.format.read_magic(f)
        if version == (1, 0):
            np.lib.format.read_array_header_1_0(f)
        else:
            np.lib.format.read_array_header_2_0(f)
        return f.tell()


def default_cell_width(points: np.ndarray,
                       points_per_cell: int = DEFAULT_POINTS_PER_CELL) -> float:
    """Layout cell width targeting ``points_per_cell`` under uniform density."""
    n, dims = points.shape
    extent = points.max(axis=0) - points.min(axis=0)
    extent = np.where(extent <= 0, 1.0, extent)
    volume = float(np.prod(extent))
    return float((volume * points_per_cell / n) ** (1.0 / dims))


class SpatialStore(DatasetSource):
    """On-disk dataset in grid B-order with a per-cell offset directory.

    Create with :meth:`write` (from an in-memory array) and re-open with
    :meth:`open`; instances are immutable.  Only the O(|G|) cell directory
    is resident — the O(n) point data stays on disk and is read per slice.
    """

    supports_streaming = True

    def __init__(self, path: Path, meta: dict, cell_ids: np.ndarray,
                 cell_starts: np.ndarray, cell_counts: np.ndarray) -> None:
        self.path = Path(path)
        self._meta = meta
        self.cell_width = float(meta["cell_width"])
        self.gmin = np.asarray(meta["gmin"], dtype=np.float64)
        self.gmax = np.asarray(meta["gmax"], dtype=np.float64)
        self.num_cells = np.asarray(meta["num_cells"], dtype=np.int64)
        self.strides = np.asarray(meta["strides"], dtype=np.int64)
        self.cell_ids = cell_ids
        self.cell_starts = cell_starts
        self.cell_counts = cell_counts
        self.cell_coords = lin.delinearize(cell_ids, self.num_cells)
        self.read_stats = StoreReadStats()
        self._shape = (int(meta["n_points"]), int(meta["n_dims"]))
        self._points_offset = _npy_data_offset(self.path / "points.npy")
        self._ids_offset = _npy_data_offset(self.path / "ids.npy")
        self._array: Optional[np.ndarray] = None

    # ------------------------------------------------------------ construction
    @classmethod
    def write(cls, points: np.ndarray, path: Union[str, Path],
              cell_width: Optional[float] = None) -> "SpatialStore":
        """Write ``points`` (original row order) as a store at ``path``.

        ``cell_width`` is the *layout* granularity — independent of any
        query ε; a query's halo radius is ``ceil(eps / cell_width)`` layout
        cells (see :meth:`halo_radius`).  Defaults to a width targeting
        :data:`DEFAULT_POINTS_PER_CELL` points per non-empty cell.
        """
        pts = check_points(points)
        width = check_eps(cell_width) if cell_width is not None \
            else default_cell_width(pts)
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)

        gmin, gmax = lin.compute_grid_bounds(pts, width)
        num_cells = lin.compute_num_cells(gmin, gmax, width)
        strides = lin.compute_strides(num_cells)
        coords = lin.compute_cell_coords(pts, gmin, width, num_cells)
        linear = lin.linearize(coords, strides)
        order = np.argsort(linear, kind="stable").astype(np.int64)
        sorted_ids = linear[order]
        cell_ids, cell_starts, cell_counts = _run_length_encode(sorted_ids)

        np.save(path / "points.npy", pts[order])
        np.save(path / "ids.npy", order)
        np.save(path / "cells.npy", cell_ids)
        np.save(path / "cell_starts.npy", cell_starts)
        np.save(path / "cell_counts.npy", cell_counts)
        meta = {
            "format_version": FORMAT_VERSION,
            "n_points": int(pts.shape[0]),
            "n_dims": int(pts.shape[1]),
            "dtype": "float64",
            "cell_width": float(width),
            "gmin": [float(v) for v in gmin],
            "gmax": [float(v) for v in gmax],
            "num_cells": [int(v) for v in num_cells],
            "strides": [int(v) for v in strides],
            "n_nonempty_cells": int(cell_ids.shape[0]),
        }
        (path / "meta.json").write_text(json.dumps(meta, indent=2) + "\n")
        return cls.open(path)

    @classmethod
    def open(cls, path: Union[str, Path]) -> "SpatialStore":
        """Open an existing store (loads only the cell directory)."""
        path = Path(path)
        meta_path = path / "meta.json"
        if not meta_path.is_file():
            raise FileNotFoundError(f"{path} is not a SpatialStore "
                                    "(missing meta.json)")
        meta = json.loads(meta_path.read_text())
        version = meta.get("format_version")
        if version != FORMAT_VERSION:
            raise ValueError(f"unsupported SpatialStore format version "
                             f"{version!r} (this build reads {FORMAT_VERSION})")
        return cls(path=path, meta=meta,
                   cell_ids=np.load(path / "cells.npy"),
                   cell_starts=np.load(path / "cell_starts.npy"),
                   cell_counts=np.load(path / "cell_counts.npy"))

    # -------------------------------------------------------- source protocol
    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def n_nonempty_cells(self) -> int:
        """Number of non-empty layout cells ``|G|`` in the directory."""
        return int(self.cell_ids.shape[0])

    def as_array(self) -> np.ndarray:
        """Materialize the dataset in original row order (O(n) memory).

        Cached on the instance (the store is immutable), so repeated
        non-streaming queries share one materialization.  Streamed
        execution never calls this.
        """
        if self._array is None:
            stored = np.load(self.path / "points.npy")
            ids = np.load(self.path / "ids.npy")
            out = np.empty_like(stored)
            out[ids] = stored
            self._array = out
        return self._array

    def identity(self) -> DatasetIdentity:
        path_key = hashlib.blake2b(str(self.path.resolve()).encode(),
                                   digest_size=8).digest()
        n = self.n_points
        step = max(1, n // _FINGERPRINT_SAMPLE_ROWS)
        digest = hashlib.blake2b(digest_size=16)
        digest.update(json.dumps(self._meta, sort_keys=True).encode())
        # Strided single-row reads, NOT a whole-file memmap: identity is
        # computed inside memory-capped sessions, where a transient mapping
        # the size of the dataset would defeat the cap.  One file handle,
        # points only, and no ``read_stats`` contribution — those counters
        # measure the streaming contract, not fingerprinting.
        row_bytes = self.n_dims * 8
        with open(self.path / "points.npy", "rb") as f:
            for row in range(0, n, step):
                f.seek(self._points_offset + row * row_bytes)
                digest.update(f.read(row_bytes))
        return DatasetIdentity(array_id=int.from_bytes(path_key, "big"),
                               shape=self._shape, dtype=self._meta["dtype"],
                               fingerprint=digest.hexdigest())

    def storage_descriptor(self) -> Optional[str]:
        return str(self.path)

    # --------------------------------------------------------------- mmapping
    def stored_points(self) -> np.ndarray:
        """Read-only memmap of the points in *stored* (B-order) row order."""
        return np.load(self.path / "points.npy", mmap_mode="r")

    def stored_ids(self) -> np.ndarray:
        """Read-only memmap of the original row id per stored row."""
        return np.load(self.path / "ids.npy", mmap_mode="r")

    # ---------------------------------------------------------- sliced reads
    def read_rows(self, lo: int, hi: int) -> Tuple[np.ndarray, np.ndarray]:
        """Read stored rows ``[lo, hi)`` as ``(points, original_ids)``.

        Positioned file reads (not a whole-file memmap), so both resident
        and *address-space* footprint are bounded by the slice — which is
        what lets a join run under a ``RLIMIT_AS`` cap smaller than the
        file.
        """
        lo, hi = int(lo), int(hi)
        if not (0 <= lo <= hi <= self.n_points):
            raise ValueError(f"row range [{lo}, {hi}) out of bounds "
                             f"[0, {self.n_points})")
        count = hi - lo
        dims = self.n_dims
        row_bytes = dims * 8
        with open(self.path / "points.npy", "rb") as f:
            f.seek(self._points_offset + lo * row_bytes)
            pts = np.frombuffer(f.read(count * row_bytes), dtype=np.float64)
        with open(self.path / "ids.npy", "rb") as f:
            f.seek(self._ids_offset + lo * 8)
            ids = np.frombuffer(f.read(count * 8), dtype=np.int64)
        self.read_stats.reads += 1
        self.read_stats.rows_read += count
        return pts.reshape(count, dims), ids

    def cell_row_range(self, lo: int, hi: int) -> Tuple[int, int]:
        """Stored-row range covered by directory positions ``[lo, hi)``."""
        if hi <= lo:
            return (0, 0)
        start = int(self.cell_starts[lo])
        end = int(self.cell_starts[hi - 1] + self.cell_counts[hi - 1])
        return (start, end)

    def read_cell_range(self, lo: int, hi: int) -> Tuple[np.ndarray, np.ndarray]:
        """Points + original ids of the contiguous directory range ``[lo, hi)``."""
        start, end = self.cell_row_range(lo, hi)
        return self.read_rows(start, end)

    def read_cell_positions(self, positions: np.ndarray,
                            ) -> Tuple[np.ndarray, np.ndarray]:
        """Points + original ids of arbitrary directory positions.

        Consecutive directory positions are consecutive on disk, so the
        sorted position set is coalesced into maximal runs and each run is
        read as one contiguous slice (``read_stats.reads`` counts them).
        """
        positions = np.asarray(positions, dtype=np.int64)
        if positions.shape[0] == 0:
            return (np.empty((0, self.n_dims), dtype=np.float64),
                    np.empty(0, dtype=np.int64))
        positions = np.unique(positions)
        breaks = np.flatnonzero(np.diff(positions) != 1)
        run_starts = np.concatenate(([0], breaks + 1))
        run_ends = np.concatenate((breaks + 1, [positions.shape[0]]))
        pts_parts: List[np.ndarray] = []
        ids_parts: List[np.ndarray] = []
        for s, e in zip(run_starts, run_ends):
            pts, ids = self.read_cell_range(int(positions[s]),
                                            int(positions[e - 1]) + 1)
            pts_parts.append(pts)
            ids_parts.append(ids)
        return np.concatenate(pts_parts), np.concatenate(ids_parts)

    # ------------------------------------------------------------------ halos
    def halo_radius(self, eps: float) -> int:
        """Halo width in layout cells for a query at ``eps``.

        Any point within Euclidean ε of a point in cell ``c`` lies within
        ``ceil(eps / cell_width)`` layout cells of ``c`` per dimension
        (Chebyshev distance), so reading that many layers around a shard
        captures every possible join partner.
        """
        return int(np.ceil(check_eps(eps) / self.cell_width))

    def halo_positions(self, lo: int, hi: int, radius_cells: int,
                       chunk_cells: int = 2048) -> np.ndarray:
        """Directory positions of the ε-halo of directory range ``[lo, hi)``.

        All non-empty layout cells within Chebyshev distance
        ``radius_cells`` of any cell in the range, *excluding* the range
        itself.  Owned cells are expanded in bounded chunks — and the
        chunk shrinks with the offset count ``(2r+1)^d`` so the broadcast
        working set stays bounded regardless of dimensionality/radius, not
        O(shard · (2r+1)^d).
        """
        r = int(radius_cells)
        if r < 0:
            raise ValueError("radius_cells must be >= 0")
        if hi <= lo or r == 0:
            return np.empty(0, dtype=np.int64)
        dims = self.n_dims
        axes = [np.arange(-r, r + 1, dtype=np.int64)] * dims
        offsets = np.stack(np.meshgrid(*axes, indexing="ij"),
                           axis=-1).reshape(-1, dims)
        # Bound the (block x offsets) expansion: at high dims/radii the
        # offset count explodes ((2r+1)^d), so the block shrinks to keep
        # the broadcast within _HALO_PAIR_BUDGET candidate cells.
        chunk_cells = max(1, min(int(chunk_cells),
                                 _HALO_PAIR_BUDGET // offsets.shape[0]))
        found: List[np.ndarray] = []
        for start in range(lo, hi, chunk_cells):
            block = self.cell_coords[start:min(start + chunk_cells, hi)]
            neighbor = (block[:, None, :] + offsets[None, :, :]).reshape(-1, dims)
            inside = np.all((neighbor >= 0)
                            & (neighbor < self.num_cells[None, :]), axis=1)
            linear = lin.linearize(neighbor[inside], self.strides)
            pos = np.searchsorted(self.cell_ids, linear)
            pos = np.minimum(pos, self.cell_ids.shape[0] - 1)
            found.append(np.unique(pos[self.cell_ids[pos] == linear]))
        positions = np.unique(np.concatenate(found))
        return positions[(positions < lo) | (positions >= hi)]
