"""Dataset registry mirroring Table I of the paper.

Each :class:`DatasetSpec` records the paper's dataset (name, size,
dimensionality, the ε values swept in the corresponding figure) together
with the surrogate generator and the scaled-down default size used by the
benchmark harness.  Scaling keeps the *average-neighbor* profile of the
paper's configuration by rescaling ε with the density rule

    eps_scaled = eps_paper * (N_paper / N_scaled) ** (1 / n_dims)

so the relative behaviour of the algorithms (who wins, where the curves
bend) is preserved even though the absolute sizes are far smaller (see
DESIGN.md §2 and EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.data.realworld import sdss_dataset, sw_dataset
from repro.data.synthetic import uniform_dataset


@dataclass(frozen=True)
class DatasetSpec:
    """One row of Table I plus reproduction metadata."""

    name: str
    family: str                      # "Syn", "SW" or "SDSS"
    paper_points: int
    n_dims: int
    paper_eps: Tuple[float, ...]     # ε sweep of the corresponding figure
    figure: str                      # paper figure panel, e.g. "4a"
    default_scaled_points: int
    generator: Callable[[int, Optional[int]], np.ndarray]

    def generate(self, n_points: Optional[int] = None, seed: int = 0) -> np.ndarray:
        """Generate the (scaled) dataset."""
        n = int(n_points) if n_points is not None else self.default_scaled_points
        return self.generator(n, seed)

    def eps_scale_factor(self, n_points: Optional[int] = None) -> float:
        """Density-preserving ε scale factor for a scaled-down point count."""
        n = int(n_points) if n_points is not None else self.default_scaled_points
        return float((self.paper_points / n) ** (1.0 / self.n_dims))

    def scaled_eps(self, n_points: Optional[int] = None) -> List[float]:
        """The paper's ε sweep rescaled for the (scaled) dataset size."""
        factor = self.eps_scale_factor(n_points)
        return [round(e * factor, 6) for e in self.paper_eps]


def _syn(name: str, n_dims: int, paper_points: int, paper_eps: Tuple[float, ...],
         figure: str, scaled: int) -> DatasetSpec:
    """Registry helper for the uniform synthetic datasets."""
    return DatasetSpec(
        name=name, family="Syn", paper_points=paper_points, n_dims=n_dims,
        paper_eps=paper_eps, figure=figure, default_scaled_points=scaled,
        generator=lambda n, seed, d=n_dims: uniform_dataset(n, d, seed=seed),
    )


def _sw(name: str, n_dims: int, paper_points: int, paper_eps: Tuple[float, ...],
        figure: str, scaled: int) -> DatasetSpec:
    """Registry helper for the SW- (ionosphere) surrogates."""
    return DatasetSpec(
        name=name, family="SW", paper_points=paper_points, n_dims=n_dims,
        paper_eps=paper_eps, figure=figure, default_scaled_points=scaled,
        generator=lambda n, seed, d=n_dims: sw_dataset(n, n_dims=d, seed=seed),
    )


def _sdss(name: str, paper_points: int, paper_eps: Tuple[float, ...],
          figure: str, scaled: int) -> DatasetSpec:
    """Registry helper for the SDSS- (galaxy) surrogates."""
    return DatasetSpec(
        name=name, family="SDSS", paper_points=paper_points, n_dims=2,
        paper_eps=paper_eps, figure=figure, default_scaled_points=scaled,
        generator=lambda n, seed: sdss_dataset(n, seed=seed),
    )


#: The sixteen datasets of Table I, keyed by the paper's dataset name.
DATASETS: Dict[str, DatasetSpec] = {
    # Real-world (surrogates): SW- and SDSS-.
    "SW2DA": _sw("SW2DA", 2, 1_864_620, (0.3, 0.6, 0.9, 1.2, 1.5), "4a", 4000),
    "SW2DB": _sw("SW2DB", 2, 5_159_737, (0.1, 0.2, 0.3, 0.4, 0.5), "4b", 8000),
    "SDSS2DA": _sdss("SDSS2DA", 2_000_000, (0.3, 0.6, 0.9, 1.2, 1.5), "4c", 4000),
    "SDSS2DB": _sdss("SDSS2DB", 15_228_633, (0.02, 0.04, 0.06, 0.08, 0.10), "4d", 10000),
    "SW3DA": _sw("SW3DA", 3, 1_864_620, (0.6, 1.2, 1.8, 2.4, 3.0), "4e", 4000),
    "SW3DB": _sw("SW3DB", 3, 5_159_737, (0.2, 0.4, 0.6, 0.8, 1.0), "4f", 8000),
    # Synthetic, 2 million points (Figure 5).
    "Syn2D2M": _syn("Syn2D2M", 2, 2_000_000, (0.2, 0.4, 0.6, 0.8, 1.0), "5a", 4000),
    "Syn3D2M": _syn("Syn3D2M", 3, 2_000_000, (0.2, 0.4, 0.6, 0.8, 1.0), "5b", 4000),
    "Syn4D2M": _syn("Syn4D2M", 4, 2_000_000, (2.0, 4.0, 6.0, 8.0, 10.0), "5c", 4000),
    "Syn5D2M": _syn("Syn5D2M", 5, 2_000_000, (2.0, 4.0, 6.0, 8.0, 10.0), "5d", 4000),
    "Syn6D2M": _syn("Syn6D2M", 6, 2_000_000, (2.0, 4.0, 6.0, 8.0, 10.0), "5e", 4000),
    # Synthetic, 10 million points (Figure 6).
    "Syn2D10M": _syn("Syn2D10M", 2, 10_000_000, (0.1, 0.2, 0.3, 0.4, 0.5), "6a", 8000),
    "Syn3D10M": _syn("Syn3D10M", 3, 10_000_000, (0.1, 0.2, 0.3, 0.4, 0.5), "6b", 8000),
    "Syn4D10M": _syn("Syn4D10M", 4, 10_000_000, (1.0, 2.0, 3.0, 4.0, 5.0), "6c", 8000),
    "Syn5D10M": _syn("Syn5D10M", 5, 10_000_000, (1.0, 2.0, 3.0, 4.0, 5.0), "6d", 8000),
    "Syn6D10M": _syn("Syn6D10M", 6, 10_000_000, (1.0, 2.0, 3.0, 4.0, 5.0), "6e", 8000),
}

#: Dataset groups as used by the figures.
REAL_WORLD_DATASETS = ("SW2DA", "SW2DB", "SDSS2DA", "SDSS2DB", "SW3DA", "SW3DB")
SYN_2M_DATASETS = ("Syn2D2M", "Syn3D2M", "Syn4D2M", "Syn5D2M", "Syn6D2M")
SYN_10M_DATASETS = ("Syn2D10M", "Syn3D10M", "Syn4D10M", "Syn5D10M", "Syn6D10M")


def list_datasets(family: Optional[str] = None) -> List[str]:
    """Names of the registered datasets, optionally filtered by family."""
    if family is None:
        return list(DATASETS)
    return [name for name, spec in DATASETS.items() if spec.family == family]


def load_dataset(name: str, n_points: Optional[int] = None, seed: int = 0) -> np.ndarray:
    """Generate the named dataset at the requested (or default scaled) size."""
    try:
        spec = DATASETS[name]
    except KeyError as exc:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASETS)}") from exc
    return spec.generate(n_points=n_points, seed=seed)
