"""Synthetic dataset generators.

The paper's synthetic datasets (Syn-) are uniformly distributed and
independent in each dimension, with coordinates drawn from [0, 100]
(Section VI-A).  Uniform data maximizes the number of non-empty grid cells
and therefore represents the *worst case* for the GPU-SJ grid index.  The
additional generators (Gaussian clusters, exponential, Thomas process) model
skewed distributions used for ablations and as building blocks of the
real-world surrogates in :mod:`repro.data.realworld`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

#: Coordinate range of the paper's synthetic datasets.
SYNTHETIC_RANGE = (0.0, 100.0)


def _rng(seed: Optional[int]) -> np.random.Generator:
    """Create a generator (fresh entropy when ``seed`` is None)."""
    return np.random.default_rng(seed)


def uniform_dataset(n_points: int, n_dims: int, seed: Optional[int] = 0,
                    low: float = SYNTHETIC_RANGE[0],
                    high: float = SYNTHETIC_RANGE[1]) -> np.ndarray:
    """Uniform i.i.d. points in ``[low, high]^n`` — the paper's Syn- datasets.

    Parameters
    ----------
    n_points, n_dims:
        Dataset size and dimensionality (the paper uses 2–6 dimensions with
        2 and 10 million points).
    seed:
        RNG seed for reproducibility.
    low, high:
        Coordinate range (paper: [0, 100]).
    """
    if n_points < 1 or n_dims < 1:
        raise ValueError("n_points and n_dims must be positive")
    if high <= low:
        raise ValueError("high must exceed low")
    return _rng(seed).uniform(low, high, size=(n_points, n_dims)).astype(np.float64)


def gaussian_clusters(n_points: int, n_dims: int, n_clusters: int = 16,
                      cluster_std: float = 2.0, seed: Optional[int] = 0,
                      low: float = SYNTHETIC_RANGE[0],
                      high: float = SYNTHETIC_RANGE[1]) -> np.ndarray:
    """Mixture of isotropic Gaussian clusters (skewed density).

    Cluster centers are uniform in the data range; points are assigned to
    clusters with uniform probability.  Produces the over-dense regions the
    paper argues favour the grid index relative to uniform data.
    """
    if n_clusters < 1:
        raise ValueError("n_clusters must be >= 1")
    rng = _rng(seed)
    centers = rng.uniform(low, high, size=(n_clusters, n_dims))
    assignment = rng.integers(0, n_clusters, size=n_points)
    pts = centers[assignment] + rng.normal(0.0, cluster_std, size=(n_points, n_dims))
    return np.clip(pts, low, high).astype(np.float64)


def exponential_dataset(n_points: int, n_dims: int, scale: float = 10.0,
                        seed: Optional[int] = 0) -> np.ndarray:
    """Exponentially distributed coordinates (monotonically decaying density)."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    return _rng(seed).exponential(scale, size=(n_points, n_dims)).astype(np.float64)


def thomas_process(n_points: int, n_dims: int = 2, parent_intensity: float = 40.0,
                   cluster_std: float = 0.6, seed: Optional[int] = 0,
                   low: float = SYNTHETIC_RANGE[0],
                   high: float = SYNTHETIC_RANGE[1],
                   background_fraction: float = 0.1) -> np.ndarray:
    """Neyman–Scott (Thomas) cluster process.

    Parent centers follow a Poisson process over the window; offspring are
    normally distributed around their parents.  This is the standard
    synthetic stand-in for hierarchically clustered astronomical catalogs
    and is used by the SDSS surrogate.

    Parameters
    ----------
    n_points:
        Total number of points generated (offspring plus background).
    parent_intensity:
        Expected number of parent centers.
    cluster_std:
        Standard deviation of the offspring displacement.
    background_fraction:
        Fraction of points drawn uniformly over the window (field galaxies).
    """
    if not (0.0 <= background_fraction <= 1.0):
        raise ValueError("background_fraction must be in [0, 1]")
    rng = _rng(seed)
    n_background = int(round(n_points * background_fraction))
    n_clustered = n_points - n_background
    n_parents = max(1, rng.poisson(parent_intensity))
    parents = rng.uniform(low, high, size=(n_parents, n_dims))
    assignment = rng.integers(0, n_parents, size=n_clustered)
    offspring = parents[assignment] + rng.normal(0.0, cluster_std, size=(n_clustered, n_dims))
    background = rng.uniform(low, high, size=(n_background, n_dims))
    pts = np.vstack([offspring, background]) if n_background else offspring
    pts = np.clip(pts, low, high)
    rng.shuffle(pts, axis=0)
    return pts.astype(np.float64)


def expected_average_neighbors(n_points: int, n_dims: int, eps: float,
                               low: float = SYNTHETIC_RANGE[0],
                               high: float = SYNTHETIC_RANGE[1]) -> float:
    """Expected ε-neighbors per point for uniform data (excluding the point).

    The expectation is the dataset density times the volume of the
    n-dimensional ε-ball; used by the experiment harness to pick scaled ε
    values whose neighbor counts track the paper's figures.
    """
    from math import gamma, pi

    volume_window = (high - low) ** n_dims
    volume_ball = pi ** (n_dims / 2.0) / gamma(n_dims / 2.0 + 1.0) * eps ** n_dims
    density = (n_points - 1) / volume_window
    return density * volume_ball


def eps_for_average_neighbors(target_neighbors: float, n_points: int, n_dims: int,
                              low: float = SYNTHETIC_RANGE[0],
                              high: float = SYNTHETIC_RANGE[1]) -> float:
    """Invert :func:`expected_average_neighbors`: ε that yields the target count."""
    from math import gamma, pi

    if target_neighbors <= 0:
        raise ValueError("target_neighbors must be positive")
    volume_window = (high - low) ** n_dims
    density = (n_points - 1) / volume_window
    unit_ball = pi ** (n_dims / 2.0) / gamma(n_dims / 2.0 + 1.0)
    return float((target_neighbors / (density * unit_ball)) ** (1.0 / n_dims))
