"""Min-max normalization utilities (the Super-EGO [0,1] convention).

The paper notes that Super-EGO normalizes all data into [0, 1] per dimension
and that the datasets were modified accordingly while figures report the
non-normalized ε.  These helpers perform that transformation and its inverse;
note that *per-dimension* scaling distorts Euclidean distances unless the
scale is uniform, which is why :class:`repro.baselines.superego.SuperEGO`
uses a single uniform scale internally.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.validation import ensure_2d_float64


def normalize_minmax(points: np.ndarray, per_dimension: bool = True
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Normalize points into the unit cube.

    Parameters
    ----------
    points:
        ``(n_points, n_dims)`` coordinates.
    per_dimension:
        When true each dimension is scaled by its own extent (the Super-EGO
        convention, distance-distorting); when false a single uniform scale
        (the maximum extent) is used, preserving Euclidean geometry.

    Returns
    -------
    (normalized, offset, scale):
        ``normalized = (points - offset) / scale`` with ``scale`` broadcast
        per dimension.
    """
    pts = ensure_2d_float64(points)
    offset = pts.min(axis=0)
    extents = pts.max(axis=0) - offset
    extents = np.where(extents <= 0.0, 1.0, extents)
    if per_dimension:
        scale = extents
    else:
        scale = np.full_like(extents, extents.max())
    return (pts - offset) / scale, offset, scale


def denormalize_minmax(normalized: np.ndarray, offset: np.ndarray,
                       scale: np.ndarray) -> np.ndarray:
    """Invert :func:`normalize_minmax`."""
    norm = ensure_2d_float64(normalized)
    return norm * np.asarray(scale, dtype=np.float64) + np.asarray(offset, dtype=np.float64)
